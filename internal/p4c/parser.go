package p4c

import (
	"fmt"
)

// AST node types. The grammar is deliberately small; see the package
// comment for the accepted subset.

// File is a parsed source file.
type File struct {
	Actions []*ActionDecl
	Tables  []*TableDecl
	Control *ControlDecl
}

// ActionDecl is `action name(params...) { primitives; }`.
type ActionDecl struct {
	Name   string
	Params []string
	Stmts  []PrimStmt
}

// PrimStmt is one primitive call inside an action body.
type PrimStmt struct {
	Op   string
	Args []string
}

// TableDecl is a `table` declaration.
type TableDecl struct {
	Name    string
	Keys    []KeyDecl
	Actions []string
	Default string
	Size    int
	Entries []EntryDecl
	Line    int
}

// EntryDecl is one `const entries` row: match values and an action call.
type EntryDecl struct {
	Matches []MatchDecl
	Action  string
	Args    []string
	Prio    int
	Line    int
}

// MatchDecl is one match value: exact V, LPM V/plen, or ternary V:mask.
// Values are kept as source text; lowering parses them.
type MatchDecl struct {
	Value  string
	Prefix string // non-empty for V/plen
	Mask   string // non-empty for V:mask
}

// KeyDecl is one `field: match_kind;` key entry.
type KeyDecl struct {
	Field string
	Kind  string
}

// ControlDecl is the pipeline control block.
type ControlDecl struct {
	Name string
	Body []Stmt
}

// Stmt is a control-block statement.
type Stmt interface{ stmt() }

// ApplyStmt is `apply(table);`.
type ApplyStmt struct {
	Table string
	Line  int
}

// IfStmt is `if (field op literal) { ... } [else { ... }]`.
type IfStmt struct {
	Field string
	Op    string
	Value string
	Then  []Stmt
	Else  []Stmt
	Line  int
}

// SwitchStmt is `switch (apply(table)) { action: { ... } ... [default: {...}] }`.
type SwitchStmt struct {
	Table   string
	Cases   []SwitchCase
	Default []Stmt
	HasDef  bool
	Line    int
}

// SwitchCase is one `action: { ... }` arm.
type SwitchCase struct {
	Action string
	Body   []Stmt
}

func (*ApplyStmt) stmt()  {}
func (*IfStmt) stmt()     {}
func (*SwitchStmt) stmt() {}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses source text into a File.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.peek().kind != tokEOF {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errorf("expected declaration, got %s", describe(t))
		}
		switch t.text {
		case "action":
			a, err := p.parseAction()
			if err != nil {
				return nil, err
			}
			f.Actions = append(f.Actions, a)
		case "table":
			tb, err := p.parseTable()
			if err != nil {
				return nil, err
			}
			f.Tables = append(f.Tables, tb)
		case "control":
			if f.Control != nil {
				return nil, p.errorf("multiple control blocks")
			}
			c, err := p.parseControl()
			if err != nil {
				return nil, err
			}
			f.Control = c
		default:
			return nil, p.errorf("unknown declaration %q (want action/table/control)", t.text)
		}
	}
	if f.Control == nil {
		return nil, fmt.Errorf("p4c: no control block")
	}
	return f, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	t := p.peek()
	return fmt.Errorf("p4c: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, p.errorf("expected %s, got %s", kind, describe(t))
	}
	return p.advance(), nil
}

func (p *parser) expectIdent(word string) error {
	t := p.peek()
	if t.kind != tokIdent || t.text != word {
		return p.errorf("expected %q, got %s", word, describe(t))
	}
	p.advance()
	return nil
}

// parseAction parses `action name(params) { op(args); ... }`.
func (p *parser) parseAction() (*ActionDecl, error) {
	if err := p.expectIdent("action"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	a := &ActionDecl{Name: name.text}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for p.peek().kind != tokRParen {
		param, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		a.Params = append(a.Params, param.text)
		if p.peek().kind == tokComma {
			p.advance()
		}
	}
	p.advance() // ')'
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.peek().kind != tokRBrace {
		op, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		stmt := PrimStmt{Op: op.text}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		for p.peek().kind != tokRParen {
			arg := p.peek()
			if arg.kind != tokIdent && arg.kind != tokNumber {
				return nil, p.errorf("expected primitive argument, got %s", describe(arg))
			}
			p.advance()
			stmt.Args = append(stmt.Args, arg.text)
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
		p.advance() // ')'
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		a.Stmts = append(a.Stmts, stmt)
	}
	p.advance() // '}'
	return a, nil
}

// parseTable parses a table declaration.
func (p *parser) parseTable() (*TableDecl, error) {
	if err := p.expectIdent("table"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	tb := &TableDecl{Name: name.text, Line: name.line}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.peek().kind != tokRBrace {
		prop, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if prop.text == "const" {
			// `const entries = { (match...): action(args) [@prio(n)]; }`
			if err := p.expectIdent("entries"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokEquals); err != nil {
				return nil, err
			}
			if err := p.parseEntries(tb); err != nil {
				return nil, err
			}
			continue
		}
		if _, err := p.expect(tokEquals); err != nil {
			return nil, err
		}
		switch prop.text {
		case "key":
			if _, err := p.expect(tokLBrace); err != nil {
				return nil, err
			}
			for p.peek().kind != tokRBrace {
				field, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokColon); err != nil {
					return nil, err
				}
				kind, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				tb.Keys = append(tb.Keys, KeyDecl{Field: field.text, Kind: kind.text})
			}
			p.advance() // '}'
		case "actions":
			if _, err := p.expect(tokLBrace); err != nil {
				return nil, err
			}
			for p.peek().kind != tokRBrace {
				act, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				tb.Actions = append(tb.Actions, act.text)
			}
			p.advance() // '}'
		case "default_action":
			act, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			tb.Default = act.text
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		case "size":
			n, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(n.text, "%d", &tb.Size); err != nil {
				return nil, p.errorf("bad size %q", n.text)
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unknown table property %q", prop.text)
		}
	}
	p.advance() // '}'
	return tb, nil
}

// parseEntries parses the body of `const entries = { ... }`.
func (p *parser) parseEntries(tb *TableDecl) error {
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.peek().kind != tokRBrace {
		line := p.peek().line
		var e EntryDecl
		e.Line = line
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		for p.peek().kind != tokRParen {
			var m MatchDecl
			v := p.peek()
			if v.kind != tokNumber && v.kind != tokIdent {
				return p.errorf("expected match value, got %s", describe(v))
			}
			p.advance()
			m.Value = v.text
			// V/plen is lexed as number, '<'? no: '/' not an operator...
			// The lexer has no '/' token; V/plen therefore lexes the '/'
			// as part of a comment or errors. Use V mask syntax instead:
			// lpm(V, plen) and ternary via V : mask? Simplest accepted
			// forms: "V" (exact), "V" ":" mask (ternary), and
			// "V" ":" "lpm" ":" plen for prefixes.
			if p.peek().kind == tokColon {
				p.advance()
				second := p.peek()
				if second.kind == tokIdent && second.text == "lpm" {
					p.advance()
					if _, err := p.expect(tokColon); err != nil {
						return err
					}
					plen, err := p.expect(tokNumber)
					if err != nil {
						return err
					}
					m.Prefix = plen.text
				} else if second.kind == tokNumber {
					p.advance()
					m.Mask = second.text
				} else {
					return p.errorf("expected mask or 'lpm', got %s", describe(second))
				}
			}
			e.Matches = append(e.Matches, m)
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
		p.advance() // ')'
		if _, err := p.expect(tokColon); err != nil {
			return err
		}
		act, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		e.Action = act.text
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		for p.peek().kind != tokRParen {
			arg := p.peek()
			if arg.kind != tokNumber && arg.kind != tokIdent {
				return p.errorf("expected action argument, got %s", describe(arg))
			}
			p.advance()
			e.Args = append(e.Args, arg.text)
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
		p.advance() // ')'
		// Optional priority: `prio N` before the semicolon.
		if p.peek().kind == tokIdent && p.peek().text == "prio" {
			p.advance()
			n, err := p.expect(tokNumber)
			if err != nil {
				return err
			}
			if _, serr := fmt.Sscanf(n.text, "%d", &e.Prio); serr != nil {
				return p.errorf("bad priority %q", n.text)
			}
		}
		if _, err := p.expect(tokSemi); err != nil {
			return err
		}
		tb.Entries = append(tb.Entries, e)
	}
	p.advance() // '}'
	return nil
}

// parseControl parses `control name { stmts }`.
func (p *parser) parseControl() (*ControlDecl, error) {
	if err := p.expectIdent("control"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ControlDecl{Name: name.text, Body: body}, nil
}

// parseBlock parses `{ stmt* }`.
func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []Stmt
	for p.peek().kind != tokRBrace {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.advance() // '}'
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errorf("expected statement, got %s", describe(t))
	}
	switch t.text {
	case "apply":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		tbl, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ApplyStmt{Table: tbl.text, Line: t.line}, nil
	case "if":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		field, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		op, err := p.expect(tokOp)
		if err != nil {
			return nil, err
		}
		val := p.peek()
		if val.kind != tokNumber && val.kind != tokIdent {
			return nil, p.errorf("expected comparison literal, got %s", describe(val))
		}
		p.advance()
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		thenB, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Field: field.text, Op: op.text, Value: val.text, Then: thenB, Line: t.line}
		if p.peek().kind == tokIdent && p.peek().text == "else" {
			p.advance()
			elseB, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = elseB
		}
		return st, nil
	case "switch":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		if err := p.expectIdent("apply"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		tbl, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBrace); err != nil {
			return nil, err
		}
		st := &SwitchStmt{Table: tbl.text, Line: t.line}
		for p.peek().kind != tokRBrace {
			label, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			if label.text == "default" {
				if st.HasDef {
					return nil, p.errorf("duplicate default case")
				}
				st.Default = body
				st.HasDef = true
			} else {
				st.Cases = append(st.Cases, SwitchCase{Action: label.text, Body: body})
			}
		}
		p.advance() // '}'
		return st, nil
	}
	return nil, p.errorf("unknown statement %q (want apply/if/switch)", t.text)
}
