package core

import (
	"pipeleon/internal/analysis"
	"pipeleon/internal/costmodel"
	"pipeleon/internal/diag"
	"pipeleon/internal/p4ir"
)

// vetProgram runs the full static-analysis gate over a program about to be
// deployed: the semantic lint under the target's cost-model parameters
// plus, when the candidate differs from the original, the rewrite-safety
// proof that it preserves the original's dependency structure. The runtime
// refuses to deploy when any Error-severity diagnostic is present;
// warnings ride along in the round report.
func vetProgram(orig, next *p4ir.Program, pm costmodel.Params) diag.List {
	l := analysis.Lint(next, analysis.WithParams(pm))
	if next != orig {
		l = append(l, analysis.VerifyRewrite(orig, next)...)
	}
	l.Sort()
	return l
}

// deployGate applies vetProgram before a deploy, recording diagnostics in
// the report. With DeepVerify configured it additionally runs the
// symbolic tier: the value-range lints (warnings) and, for rewritten
// programs, the differential semantic-equivalence proof against the
// original (errors block the deploy). It returns false — and fills
// DeployError — when the program must not reach the device.
func (r *Runtime) deployGate(next *p4ir.Program, report *RoundReport) bool {
	diags := vetProgram(r.orig, next, r.pm)
	if r.sem != nil {
		diags = append(diags, analysis.LintDeep(next)...)
		if next != r.orig {
			diags = append(diags, r.sem.Verify(next)...)
		}
		diags.Sort()
	}
	if len(diags) > 0 {
		report.Diagnostics = diags.Strings()
	}
	if diags.HasErrors() {
		report.DeployError = "blocked by static analysis: " + diags.Errors()[0].String()
		return false
	}
	return true
}
