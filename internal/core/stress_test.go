package core

import (
	"sync"
	"testing"
	"time"

	"pipeleon/internal/opt"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/trafficgen"
)

// Concurrency stress: traffic processing, control-plane entry churn, and
// optimization rounds all run simultaneously — the real deployment shape.
// Run with -race in CI (the suite is race-clean).
func TestRuntimeConcurrentStress(t *testing.T) {
	prog := aclProgram(t)
	cfg := opt.DefaultConfig()
	cfg.TopKFrac = 1
	cfg.ProfileChangeThreshold = 0 // search every round: maximum churn
	rt, nic, _ := newRig(t, prog, cfg)

	gen := trafficgen.New(1, 0)
	gen.AddFlows(trafficgen.DropTargetedFlows(2, 1000, "tcp.dport", 23, 0.5)...)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Traffic workers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := trafficgen.New(uint64(w)+7, 0)
			g.AddFlows(trafficgen.UniformFlows(uint64(w)+8, 200)...)
			for {
				select {
				case <-stop:
					return
				default:
					nic.Measure(g.Batch(200))
				}
			}
		}(w)
	}
	// Entry churn through the API mapping.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := uint64(0x2000)
		for {
			select {
			case <-stop:
				return
			default:
				// Stay within the 16-bit sport key width; an oversized
				// value would trip PL104 and block the next deploy.
				v = 0x2000 + (v+1)&0x0fff
				e := p4ir.Entry{Match: []p4ir.MatchValue{{Value: v}}, Action: "drop_packet"}
				if err := rt.InsertEntry("acl1", e); err != nil {
					t.Error(err)
					return
				}
				if err := rt.DeleteEntry("acl1", e.Match); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	// Optimization rounds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			select {
			case <-stop:
				return
			default:
				if _, err := rt.OptimizeOnce(50 * time.Millisecond); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}()
	// Counter reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = rt.TranslatedCounters()
				_ = rt.Current()
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The system must still be coherent: the deployed program validates
	// and processes packets.
	if err := rt.Current().Validate(); err != nil {
		t.Fatalf("deployed program invalid after stress: %v", err)
	}
	m := nic.Measure(gen.Batch(500))
	if m.Packets != 500 {
		t.Fatalf("post-stress processing broken: %+v", m)
	}
}
