package core

import (
	"encoding/json"
	"testing"
	"time"

	"pipeleon/internal/faultinject"
)

// TestStatusAggregatesHistory drives the runtime through a healthy
// deploy, two injected deploy failures (opening the breaker), and the
// breaker cooldown, and checks the machine-readable status matches the
// per-round reports at each step — the aggregation fleetd relies on.
func TestStatusAggregatesHistory(t *testing.T) {
	script := faultinject.NewScript()
	rt, nic, gen := newFaultRig(t, script)
	guard := DeployGuard{BreakerThreshold: 2, BreakerCooldownRounds: 2}
	rt.SetDeployGuard(guard)

	if st := rt.Status(); st.Round != 0 || st.Deploys != 0 || st.BreakerOpen {
		t.Fatalf("fresh runtime status not zero: %+v", st)
	}

	// Rounds 1-2: injected deploy failures open the breaker.
	script.QueueN(faultinject.PointDeploy, 2, faultinject.Decision{Fail: true})
	for i := 0; i < 2; i++ {
		drive(nic, gen, 3000)
		if _, err := rt.OptimizeOnce(time.Second); err == nil {
			t.Fatalf("round %d: expected injected deploy failure", i+1)
		}
	}
	st := rt.Status()
	if st.DeployErrors != 2 {
		t.Errorf("DeployErrors = %d, want 2: %+v", st.DeployErrors, st)
	}
	if !st.BreakerOpen {
		t.Errorf("breaker should be open after %d failures: %+v", guard.BreakerThreshold, st)
	}
	if st.LastError == "" {
		t.Errorf("LastError empty after injected failures: %+v", st)
	}

	// Cooldown rounds are counted and the breaker closes afterwards.
	for i := 0; i < 2; i++ {
		drive(nic, gen, 3000)
		if _, err := rt.OptimizeOnce(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	st = rt.Status()
	if st.BreakerOpenRounds != 2 {
		t.Errorf("BreakerOpenRounds = %d, want 2: %+v", st.BreakerOpenRounds, st)
	}
	if st.BreakerOpen {
		t.Errorf("breaker still open after cooldown: %+v", st)
	}

	// Post-cooldown round: a clean deploy clears LastError.
	drive(nic, gen, 3000)
	if rep, err := rt.OptimizeOnce(time.Second); err != nil || !rep.Deployed {
		t.Fatalf("post-cooldown round should deploy: rep=%+v err=%v", rep, err)
	}
	st = rt.Status()
	if st.Deploys != 1 || st.LastError != "" {
		t.Errorf("after recovery: Deploys=%d LastError=%q, want 1/\"\": %+v", st.Deploys, st.LastError, st)
	}

	// The status round-trips as JSON (it crosses the OpStats wire).
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back RuntimeStatus
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Errorf("status did not round-trip: %+v != %+v", back, st)
	}
}

// TestStatusCountsRollbacks checks rolled-back deploys are aggregated and
// blacklisted plans are visible while live.
func TestStatusCountsRollbacks(t *testing.T) {
	script := faultinject.NewScript()
	script.Queue(faultinject.PointPlan, faultinject.Decision{Scale: 50})
	rt, nic, gen := newFaultRig(t, script)
	guard := DefaultDeployGuard(gen.Batch)
	guard.MinRealizedGainFrac = 0.5
	guard.BlacklistRounds = 1
	rt.SetDeployGuard(guard)

	drive(nic, gen, 3000)
	rep, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RolledBack {
		t.Fatalf("expected rollback: %+v", rep)
	}
	st := rt.Status()
	if st.RolledBack != 1 || st.Deploys != 1 {
		t.Errorf("RolledBack=%d Deploys=%d, want 1/1: %+v", st.RolledBack, st.Deploys, st)
	}
	if st.BlacklistedPlans != 1 {
		t.Errorf("BlacklistedPlans = %d, want 1: %+v", st.BlacklistedPlans, st)
	}
	if st.ConsecutiveFailures != 1 {
		t.Errorf("ConsecutiveFailures = %d, want 1: %+v", st.ConsecutiveFailures, st)
	}
}
