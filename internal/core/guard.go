package core

import (
	"pipeleon/internal/faultinject"
	"pipeleon/internal/packet"
)

// DeployGuard makes deployments transactional: OptimizeOnce checkpoints
// the deployed program + counter map, measures a sample of traffic before
// and after the swap, and rolls the checkpoint back when the measured
// delta contradicts the plan's prediction — the runtime defense against
// the cost-model mispredictions inherent to estimate-driven pipeline
// exploration. Rolled-back plans are blacklisted for a few rounds, and a
// circuit breaker pauses redeployment after repeated failures so a
// persistently faulty device or model cannot flap the data path.
//
// The guard is opt-in: a Runtime without one (or without a Sampler)
// deploys exactly as before.
type DeployGuard struct {
	// Sampler supplies n representative packets for the verification
	// window (e.g. trafficgen.Generator.Batch, or a recent-flows replay
	// buffer). nil disables verification.
	Sampler func(n int) []*packet.Packet
	// VerifyPackets is the sample size per window (default 256).
	VerifyPackets int
	// MaxRegression rolls back when post-deploy mean latency exceeds
	// pre-deploy by more than this fraction (default 0.1).
	MaxRegression float64
	// MinRealizedGainFrac rolls back when the measured latency
	// improvement is below this fraction of the plan's predicted gain —
	// the misprediction detector. 0 disables the check (default 0.2).
	MinRealizedGainFrac float64
	// MinPredictedGainNs gates the realized-gain check so noise-level
	// plans are not judged (default 1ns).
	MinPredictedGainNs float64
	// BlacklistRounds is how many rounds a rolled-back plan is barred
	// from redeployment (default 3).
	BlacklistRounds int
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive failed or rolled-back deploys (default 3).
	BreakerThreshold int
	// BreakerCooldownRounds is how many rounds the breaker stays open,
	// pausing redeployment while profiling continues (default 5).
	BreakerCooldownRounds int
}

// DefaultDeployGuard returns the default thresholds with the given
// traffic sampler.
func DefaultDeployGuard(sampler func(n int) []*packet.Packet) DeployGuard {
	return DeployGuard{
		Sampler:               sampler,
		VerifyPackets:         256,
		MaxRegression:         0.1,
		MinRealizedGainFrac:   0.2,
		MinPredictedGainNs:    1,
		BlacklistRounds:       3,
		BreakerThreshold:      3,
		BreakerCooldownRounds: 5,
	}
}

func (g *DeployGuard) verifyPackets() int {
	if g.VerifyPackets <= 0 {
		return 256
	}
	return g.VerifyPackets
}

func (g *DeployGuard) maxRegression() float64 {
	if g.MaxRegression <= 0 {
		return 0.1
	}
	return g.MaxRegression
}

func (g *DeployGuard) minPredictedGain() float64 {
	if g.MinPredictedGainNs <= 0 {
		return 1
	}
	return g.MinPredictedGainNs
}

func (g *DeployGuard) blacklistRounds() int {
	if g.BlacklistRounds <= 0 {
		return 3
	}
	return g.BlacklistRounds
}

func (g *DeployGuard) breakerThreshold() int {
	if g.BreakerThreshold <= 0 {
		return 3
	}
	return g.BreakerThreshold
}

func (g *DeployGuard) breakerCooldown() int {
	if g.BreakerCooldownRounds <= 0 {
		return 5
	}
	return g.BreakerCooldownRounds
}

// SetDeployGuard installs (or, with a zero-Sampler guard, removes) the
// transactional-deploy guard. Call before starting Run.
func (r *Runtime) SetDeployGuard(g DeployGuard) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.guard = &g
}

// SetFaultInjector wires a fault injector into the runtime's own fault
// points (plan-gain misprediction, stale counter windows). The NIC and
// control-plane server carry their own injector wiring.
func (r *Runtime) SetFaultInjector(inj faultinject.Injector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = inj
}

func (r *Runtime) faultAt(p faultinject.Point) faultinject.Decision {
	return faultinject.At(r.faults, p)
}

// noteDeployFailureLocked counts a failed or rolled-back deploy toward
// the circuit breaker and forces the next round to re-evaluate (a failed
// deploy must not be masked by the profile-unchanged skip).
func (r *Runtime) noteDeployFailureLocked() {
	r.lastCosts = nil
	r.consecFailures++
	if r.guard != nil && r.consecFailures >= r.guard.breakerThreshold() {
		r.breakerOpenUntil = r.round + r.guard.breakerCooldown()
		r.consecFailures = 0
	}
}

// blacklistLocked bars a plan from redeployment for the configured
// number of rounds.
func (r *Runtime) blacklistLocked(planKey string) {
	if planKey == "" || r.guard == nil {
		return
	}
	if r.blacklist == nil {
		r.blacklist = map[string]int{}
	}
	r.blacklist[planKey] = r.round + r.guard.blacklistRounds()
}

// planBlacklistedLocked reports (and garbage-collects) blacklist state
// for a plan key.
func (r *Runtime) planBlacklistedLocked(planKey string) bool {
	if planKey == "" {
		return false
	}
	exp, ok := r.blacklist[planKey]
	if !ok {
		return false
	}
	if r.round > exp {
		delete(r.blacklist, planKey)
		return false
	}
	return true
}
