package core

import (
	"strings"
	"testing"

	"pipeleon/internal/costmodel"
	"pipeleon/internal/nicsim"
	"pipeleon/internal/opt"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/packet"
	"pipeleon/internal/profile"
	"pipeleon/internal/target"
)

// The runtime's static-analysis gate: erroring programs never reach the
// device, diagnostics land in the round report, and NewRuntime refuses an
// original program that fails the lint outright.

func TestNewRuntimeRejectsInvalidProgram(t *testing.T) {
	prog, err := p4ir.ChainTables("badwidth", []p4ir.TableSpec{{
		Name:          "t",
		Keys:          []p4ir.Key{{Field: "ipv4.tos", Kind: p4ir.MatchExact, Width: packet.FieldWidth("ipv4.tos")}},
		Actions:       []*p4ir.Action{p4ir.NoopAction("pass")},
		DefaultAction: "pass",
		// 0x1ff cannot fit the 8-bit tos key: PL104 error.
		Entries: []p4ir.Entry{{Match: []p4ir.MatchValue{{Value: 0x1ff}}, Action: "pass"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	col := profile.NewCollector()
	// The emulator itself accepts the program (it would simply never
	// match); the runtime's analyzer is the layer that rejects it.
	nic, err := nicsim.New(prog, nicsim.Config{Params: costmodel.BlueField2(), Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewRuntime(prog, target.NewLocal(nic, col), opt.DefaultConfig())
	if err == nil {
		t.Fatal("NewRuntime accepted a program with PL104 errors")
	}
	if !strings.Contains(err.Error(), "PL104") {
		t.Errorf("error does not carry the diagnostic code: %v", err)
	}
}

func TestVetProgramFlagsBrokenRewrite(t *testing.T) {
	prog := aclProgram(t)
	pm := costmodel.BlueField2()

	// The unchanged program vets clean (pointer-identical: no rewrite
	// proof needed).
	if l := vetProgram(prog, prog, pm); l.HasErrors() {
		t.Fatalf("identity deploy has error diagnostics: %v", l.Errors())
	}

	// A candidate that silently dropped a table must be blocked.
	mut := prog.Clone()
	for name, tab := range mut.Tables {
		if name != mut.Root && !tab.IsSwitchCase() {
			delete(mut.Tables, name)
			break
		}
	}
	l := vetProgram(prog, mut, pm)
	if !l.HasErrors() {
		t.Fatal("rewrite that lost a table vetted clean")
	}
}

func TestDeployGateFillsReport(t *testing.T) {
	prog := aclProgram(t)
	rt, _, _ := newRig(t, prog, opt.DefaultConfig())

	mut := prog.Clone()
	for name := range mut.Tables {
		if name != mut.Root {
			delete(mut.Tables, name)
			break
		}
	}
	var report RoundReport
	if rt.deployGate(mut, &report) {
		t.Fatal("deploy gate passed a broken candidate")
	}
	if !strings.Contains(report.DeployError, "blocked by static analysis") {
		t.Errorf("DeployError = %q, want static-analysis block", report.DeployError)
	}
	if len(report.Diagnostics) == 0 {
		t.Error("round report carries no diagnostics")
	}

	// And a clean candidate sails through without residue.
	var clean RoundReport
	if !rt.deployGate(prog, &clean) {
		t.Fatalf("deploy gate blocked the unchanged program: %v", clean.DeployError)
	}
	if clean.DeployError != "" {
		t.Errorf("clean deploy left DeployError = %q", clean.DeployError)
	}
}

// The DeepVerify tier of the deploy gate: a candidate that keeps the
// original's dependency structure (so the always-on rewrite proof passes)
// but changes an observable write must be blocked — and only when the
// deep gate is configured.
func TestDeepDeployGateBlocksSemanticChange(t *testing.T) {
	prog := aclProgram(t)

	// Same shape and dependency structure, but the miss path now writes a
	// different value: structurally a valid rewrite, semantically not.
	mut := prog.Clone()
	mut.Tables["t1"].Actions[1] = p4ir.NewAction("pass", p4ir.Prim("modify_field", "meta.t1", "2"))

	// Without the deep gate the mutation sails through.
	shallow, _, _ := newRig(t, prog, opt.DefaultConfig())
	var rep RoundReport
	if !shallow.deployGate(mut, &rep) {
		t.Fatalf("shallow gate blocked the mutation: %v", rep.DeployError)
	}

	cfg := opt.DefaultConfig()
	cfg.DeepVerify = true
	deep, _, _ := newRig(t, prog, cfg)

	var blocked RoundReport
	if deep.deployGate(mut, &blocked) {
		t.Fatal("deep gate passed a semantics-changing candidate")
	}
	if !strings.Contains(blocked.DeployError, "SE003") {
		t.Errorf("DeployError = %q, want an SE003 block", blocked.DeployError)
	}

	// The unchanged program and a legal independent reorder still deploy.
	var clean RoundReport
	if !deep.deployGate(prog, &clean) {
		t.Fatalf("deep gate blocked the unchanged program: %v", clean.DeployError)
	}
	reordered, err := p4ir.ChainTables("aclprog", []p4ir.TableSpec{
		{
			Name:          "t2",
			Keys:          []p4ir.Key{{Field: "ipv4.srcAddr", Kind: p4ir.MatchExact, Width: packet.FieldWidth("ipv4.srcAddr")}},
			Actions:       []*p4ir.Action{p4ir.NewAction("set", p4ir.Prim("modify_field", "meta.t2", "1")), p4ir.NoopAction("pass")},
			DefaultAction: "pass",
		},
		{
			Name:          "t1",
			Keys:          []p4ir.Key{{Field: "ipv4.dstAddr", Kind: p4ir.MatchExact, Width: packet.FieldWidth("ipv4.dstAddr")}},
			Actions:       []*p4ir.Action{p4ir.NewAction("set", p4ir.Prim("modify_field", "meta.t1", "1")), p4ir.NoopAction("pass")},
			DefaultAction: "pass",
		},
		{
			Name:          "acl1",
			Keys:          []p4ir.Key{{Field: "tcp.sport", Kind: p4ir.MatchExact, Width: packet.FieldWidth("tcp.sport")}},
			Actions:       []*p4ir.Action{p4ir.DropAction(), p4ir.NoopAction("allow")},
			DefaultAction: "allow",
			Entries:       []p4ir.Entry{{Match: []p4ir.MatchValue{{Value: 1111}}, Action: "drop_packet"}},
		},
		{
			Name:          "acl2",
			Keys:          []p4ir.Key{{Field: "tcp.dport", Kind: p4ir.MatchExact, Width: packet.FieldWidth("tcp.dport")}},
			Actions:       []*p4ir.Action{p4ir.DropAction(), p4ir.NoopAction("allow")},
			DefaultAction: "allow",
			Entries:       []p4ir.Entry{{Match: []p4ir.MatchValue{{Value: 23}}, Action: "drop_packet"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ok RoundReport
	if !deep.deployGate(reordered, &ok) {
		t.Fatalf("deep gate blocked an equivalent reorder: %v", ok.DeployError)
	}
}
