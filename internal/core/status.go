package core

// RuntimeStatus is the machine-readable aggregate of a runtime's health:
// everything a fleet controller needs to judge one device's optimization
// loop without replaying its per-round RoundReport history. All counters
// are cumulative since the runtime was built; the booleans reflect the
// state the next round would observe. The struct is JSON-stable so it can
// cross the control-plane wire (OpStats) and be aggregated by fleetd.
type RuntimeStatus struct {
	// Round is the number of completed optimization rounds.
	Round int `json:"round"`
	// Deploys counts rounds that swapped a new program in (including
	// those later rolled back).
	Deploys int `json:"deploys"`
	// RolledBack counts deploys undone by the verification window.
	RolledBack int `json:"rolled_back"`
	// DeployErrors counts rounds whose swap, verify, commit, or rollback
	// failed outright.
	DeployErrors int `json:"deploy_errors"`
	// BreakerOpenRounds counts rounds skipped because the redeploy
	// circuit breaker was open.
	BreakerOpenRounds int `json:"breaker_open_rounds"`
	// BreakerOpen reports whether the breaker would still pause the next
	// round.
	BreakerOpen bool `json:"breaker_open"`
	// ConsecutiveFailures is the current failed/rolled-back deploy streak
	// feeding the breaker.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// BlacklistedPlans is the number of plans currently barred from
	// redeployment.
	BlacklistedPlans int `json:"blacklisted_plans"`
	// PlanBlacklistedRounds counts rounds whose chosen plan was withheld
	// by the blacklist.
	PlanBlacklistedRounds int `json:"plan_blacklisted_rounds"`
	// SkippedUnchanged counts rounds skipped by profile-change detection.
	SkippedUnchanged int `json:"skipped_unchanged"`
	// Errors counts rounds with a search/collection error.
	Errors int `json:"errors"`
	// LastError is the most recent round error or deploy error ("" when
	// the latest rounds were clean).
	LastError string `json:"last_error,omitempty"`

	// Warm-search session counters (see opt.SessionStats): how often the
	// incremental optimizer reused memoized per-unit candidates and
	// rewrite verdicts instead of re-enumerating, and what each round's
	// search actually cost.
	SearchRounds       int    `json:"search_rounds"`
	SearchUnitHits     uint64 `json:"search_unit_hits"`
	SearchUnitMisses   uint64 `json:"search_unit_misses"`
	SearchVerifyHits   uint64 `json:"search_verify_hits"`
	SearchVerifyMisses uint64 `json:"search_verify_misses"`
	// LastSearchNs / TotalSearchNs are wall-clock search latencies in
	// nanoseconds (last round / cumulative).
	LastSearchNs  int64 `json:"last_search_ns"`
	TotalSearchNs int64 `json:"total_search_ns"`
}

// Status aggregates the round history and live guard state into a
// RuntimeStatus. Before this existed, BreakerOpen/RolledBack outcomes
// lived only in individual RoundReports, forcing remote observers to
// fetch and fold the whole history themselves.
func (r *Runtime) Status() RuntimeStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RuntimeStatus{
		Round:               r.round,
		BreakerOpen:         r.round < r.breakerOpenUntil,
		ConsecutiveFailures: r.consecFailures,
	}
	if r.search != nil {
		ss := r.search.Stats()
		st.SearchRounds = ss.Rounds
		st.SearchUnitHits = ss.UnitHits
		st.SearchUnitMisses = ss.UnitMisses
		st.SearchVerifyHits = ss.VerifyHits
		st.SearchVerifyMisses = ss.VerifyMisses
		st.LastSearchNs = ss.LastSearch.Nanoseconds()
		st.TotalSearchNs = ss.TotalSearch.Nanoseconds()
	}
	// Count only live blacklist entries; expired ones are garbage-collected
	// lazily on lookup and must not be reported as active.
	for _, exp := range r.blacklist {
		if r.round <= exp {
			st.BlacklistedPlans++
		}
	}
	for _, rep := range r.history {
		if rep.Deployed {
			st.Deploys++
		}
		if rep.RolledBack {
			st.RolledBack++
		}
		if rep.DeployError != "" {
			st.DeployErrors++
		}
		if rep.BreakerOpen {
			st.BreakerOpenRounds++
		}
		if rep.PlanBlacklisted {
			st.PlanBlacklistedRounds++
		}
		if rep.SkippedUnchanged {
			st.SkippedUnchanged++
		}
		if rep.Error != "" {
			st.Errors++
		}
		switch {
		case rep.Error != "":
			st.LastError = rep.Error
		case rep.DeployError != "":
			st.LastError = rep.DeployError
		case rep.Deployed && !rep.RolledBack:
			st.LastError = ""
		}
	}
	return st
}
