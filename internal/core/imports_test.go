package core

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestCoreDoesNotImportNicsim pins the target-abstraction boundary: the
// runtime loop must reach the device only through internal/target, never
// the emulator directly. Test files are exempt — they construct emulators
// to build local targets.
func TestCoreDoesNotImportNicsim(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "pipeleon/internal/nicsim" {
				t.Errorf("%s imports %s: core must use internal/target, not the emulator", name, path)
			}
		}
	}
}
