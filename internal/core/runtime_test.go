package core

import (
	"strings"
	"testing"
	"time"

	"pipeleon/internal/costmodel"
	"pipeleon/internal/nicsim"
	"pipeleon/internal/opt"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/packet"
	"pipeleon/internal/profile"
	"pipeleon/internal/target"
	"pipeleon/internal/trafficgen"
)

// aclProgram: two regular tables then two independent ACLs.
func aclProgram(t *testing.T) *p4ir.Program {
	t.Helper()
	mk := func(name, field string) p4ir.TableSpec {
		return p4ir.TableSpec{
			Name:          name,
			Keys:          []p4ir.Key{{Field: field, Kind: p4ir.MatchExact, Width: packet.FieldWidth(field)}},
			Actions:       []*p4ir.Action{p4ir.NewAction("set", p4ir.Prim("modify_field", "meta."+name, "1")), p4ir.NoopAction("pass")},
			DefaultAction: "pass",
		}
	}
	acl := func(name, field string, dropVal uint64) p4ir.TableSpec {
		return p4ir.TableSpec{
			Name:          name,
			Keys:          []p4ir.Key{{Field: field, Kind: p4ir.MatchExact, Width: packet.FieldWidth(field)}},
			Actions:       []*p4ir.Action{p4ir.DropAction(), p4ir.NoopAction("allow")},
			DefaultAction: "allow",
			Entries: []p4ir.Entry{
				{Match: []p4ir.MatchValue{{Value: dropVal}}, Action: "drop_packet"},
			},
		}
	}
	prog, err := p4ir.ChainTables("aclprog", []p4ir.TableSpec{
		mk("t1", "ipv4.dstAddr"),
		mk("t2", "ipv4.srcAddr"),
		acl("acl1", "tcp.sport", 1111),
		acl("acl2", "tcp.dport", 23),
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func newRig(t *testing.T, prog *p4ir.Program, cfg opt.Config) (*Runtime, *nicsim.NIC, *profile.Collector) {
	t.Helper()
	col := profile.NewCollector()
	nic, err := nicsim.New(prog, nicsim.Config{
		Params:     costmodel.BlueField2(),
		Collector:  col,
		Instrument: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog, target.NewLocal(nic, col), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, nic, col
}

func drive(nic *nicsim.NIC, gen *trafficgen.Generator, n int) nicsim.Measurement {
	return nic.Measure(gen.Batch(n))
}

func TestRuntimeReordersHotACL(t *testing.T) {
	prog := aclProgram(t)
	cfg := opt.DefaultConfig()
	cfg.TopKFrac = 1
	cfg.EnableCache = false
	cfg.EnableMerge = false
	rt, nic, _ := newRig(t, prog, cfg)

	// 80% of traffic hits acl2's drop rule.
	gen := trafficgen.New(1, 0)
	gen.AddFlows(trafficgen.DropTargetedFlows(2, 2000, "tcp.dport", 23, 0.8)...)
	before := drive(nic, gen, 4000)

	rep, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deployed {
		t.Fatalf("expected a deployment; report=%+v", rep)
	}
	// The deployed program should start with acl2.
	if cur := rt.Current(); cur.Root != "acl2" {
		t.Errorf("root = %q, want acl2 promoted first (plan: %v)", cur.Root, rep.Plan)
	}
	after := drive(nic, gen, 4000)
	if after.MeanLatencyNs >= before.MeanLatencyNs {
		t.Errorf("reorder did not help: %.1f >= %.1f ns", after.MeanLatencyNs, before.MeanLatencyNs)
	}
	if rep.SearchTime <= 0 || rep.Gain <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
}

func TestRuntimeAdaptsToDropFlip(t *testing.T) {
	// Figure 2's mechanism: drop concentration flips from acl2 to acl1;
	// the runtime must re-reorder.
	prog := aclProgram(t)
	cfg := opt.DefaultConfig()
	cfg.TopKFrac = 1
	cfg.EnableCache = false
	cfg.EnableMerge = false
	rt, nic, _ := newRig(t, prog, cfg)

	genA := trafficgen.New(1, 0)
	genA.AddFlows(trafficgen.DropTargetedFlows(2, 2000, "tcp.dport", 23, 0.8)...)
	drive(nic, genA, 4000)
	if _, err := rt.OptimizeOnce(time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Current().Root != "acl2" {
		t.Fatalf("phase 1 should promote acl2, got %q", rt.Current().Root)
	}

	// Phase 2: acl1 (sport 1111) now drops 80%.
	genB := trafficgen.New(3, 0)
	genB.AddFlows(trafficgen.DropTargetedFlows(4, 2000, "tcp.sport", 1111, 0.8)...)
	drive(nic, genB, 4000)
	if _, err := rt.OptimizeOnce(time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Current().Root != "acl1" {
		t.Errorf("phase 2 should promote acl1, got %q", rt.Current().Root)
	}
}

// ternaryProgram: two ternary tables, cache-friendly under high locality.
func ternaryProgram(t *testing.T) *p4ir.Program {
	t.Helper()
	mk := func(name, field string) p4ir.TableSpec {
		return p4ir.TableSpec{
			Name: name,
			Keys: []p4ir.Key{{Field: field, Kind: p4ir.MatchTernary, Width: packet.FieldWidth(field)}},
			Actions: []*p4ir.Action{
				p4ir.NewAction("set", p4ir.Prim("modify_field", "meta."+name, "1")),
				p4ir.NoopAction("pass"),
			},
			DefaultAction: "pass",
			Entries: []p4ir.Entry{
				{Priority: 1, Match: []p4ir.MatchValue{{Value: 0, Mask: 0}}, Action: "set"},
				{Priority: 2, Match: []p4ir.MatchValue{{Value: 1, Mask: 0xff}}, Action: "set"},
				{Priority: 3, Match: []p4ir.MatchValue{{Value: 2, Mask: 0xffff}}, Action: "set"},
				{Priority: 4, Match: []p4ir.MatchValue{{Value: 3, Mask: 0xffffff}}, Action: "set"},
				{Priority: 5, Match: []p4ir.MatchValue{{Value: 4, Mask: 0xffffffff}}, Action: "set"},
			},
		}
	}
	prog, err := p4ir.ChainTables("ternprog", []p4ir.TableSpec{
		mk("t1", "ipv4.srcAddr"),
		mk("t2", "ipv4.dstAddr"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRuntimeDeploysCacheAndFeedsBackHitRate(t *testing.T) {
	prog := ternaryProgram(t)
	cfg := opt.DefaultConfig()
	cfg.TopKFrac = 1
	cfg.EnableMerge = false
	cfg.EnableReorder = false
	rt, nic, _ := newRig(t, prog, cfg)

	// Few flows → high locality → cache pays off.
	gen := trafficgen.New(5, 0)
	gen.AddFlows(trafficgen.UniformFlows(6, 20)...)
	drive(nic, gen, 3000)
	rep, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deployed {
		t.Fatalf("cache plan expected: %+v", rep)
	}
	foundCache := false
	for name := range rt.Current().Tables {
		if strings.HasPrefix(name, "__cache__") {
			foundCache = true
		}
	}
	if !foundCache {
		t.Fatalf("no cache table deployed; plan=%v", rep.Plan)
	}
	// Drive traffic through the cache, then check hit-rate feedback.
	drive(nic, gen, 3000)
	rep2, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.HitRateFeedback) == 0 {
		t.Error("expected observed hit rates to feed back")
	}
	for span, rate := range rep2.HitRateFeedback {
		if rate < 0.5 {
			t.Errorf("span %s observed hit rate %v, expected high locality", span, rate)
		}
	}
}

func TestRuntimeAPIMappingFastPath(t *testing.T) {
	prog := aclProgram(t)
	cfg := opt.DefaultConfig()
	rt, nic, _ := newRig(t, prog, cfg)
	err := rt.InsertEntry("acl1", p4ir.Entry{
		Match: []p4ir.MatchValue{{Value: 9999}}, Action: "drop_packet",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Entry active on the device: packets with sport 9999 drop.
	p := &packet.Packet{
		Eth: packet.Ethernet{Type: packet.EtherTypeIPv4},
		IP:  packet.IPv4{Protocol: packet.ProtoTCP, SrcAddr: 1, DstAddr: 2},
		TCP: packet.TCP{SrcPort: 9999, DstPort: 80}, HasIPv4: true, HasTCP: true,
	}
	if r := nic.Process(p); !r.Dropped {
		t.Error("inserted drop rule not active on device")
	}
	// And recorded in the original program.
	if got := len(rt.Original().Tables["acl1"].Entries); got != 2 {
		t.Errorf("orig acl1 entries = %d, want 2", got)
	}
	// Delete works too.
	if err := rt.DeleteEntry("acl1", []p4ir.MatchValue{{Value: 9999}}); err != nil {
		t.Fatal(err)
	}
	p2 := p.Clone()
	if r := nic.Process(p2); r.Dropped {
		t.Error("deleted rule still active")
	}
}

func TestRuntimeAPIMappingThroughMerge(t *testing.T) {
	// Two small exact static tables — the planner should merge them into
	// a pre-populated merged cache; inserts must then regenerate the
	// cross product.
	mk := func(name, field string, vals ...uint64) p4ir.TableSpec {
		ts := p4ir.TableSpec{
			Name:          name,
			Keys:          []p4ir.Key{{Field: field, Kind: p4ir.MatchExact, Width: packet.FieldWidth(field)}},
			Actions:       []*p4ir.Action{p4ir.NewAction("set", p4ir.Prim("modify_field", "meta."+name, "7")), p4ir.NoopAction("pass")},
			DefaultAction: "pass",
		}
		for _, v := range vals {
			ts.Entries = append(ts.Entries, p4ir.Entry{Match: []p4ir.MatchValue{{Value: v}}, Action: "set"})
		}
		return ts
	}
	prog, err := p4ir.ChainTables("mergeprog", []p4ir.TableSpec{
		mk("A", "ipv4.srcAddr", 1, 2),
		mk("B", "ipv4.dstAddr", 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := opt.DefaultConfig()
	cfg.TopKFrac = 1
	cfg.EnableCache = false
	cfg.EnableReorder = false
	rt, nic, _ := newRig(t, prog, cfg)
	gen := trafficgen.New(5, 0)
	gen.AddFlows(trafficgen.UniformFlows(6, 50)...)
	drive(nic, gen, 2000)
	rep, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	merged := ""
	for name := range rt.Current().Tables {
		if strings.HasPrefix(name, "__merged_cache__") {
			merged = name
		}
	}
	if merged == "" {
		t.Fatalf("no merged cache deployed; plan=%v", rep.Plan)
	}
	if got := len(rt.Current().Tables[merged].Entries); got != 2 {
		t.Fatalf("merged entries = %d, want 2x1", got)
	}
	// Insert into A: cross product must grow to 3x1.
	if err := rt.InsertEntry("A", p4ir.Entry{Match: []p4ir.MatchValue{{Value: 3}}, Action: "set"}); err != nil {
		t.Fatal(err)
	}
	var mergedTbl *p4ir.Table
	for name, tbl := range rt.Current().Tables {
		if strings.HasPrefix(name, "__merged_cache__") {
			mergedTbl = tbl
		}
	}
	if mergedTbl == nil {
		t.Fatal("merged cache vanished after insert")
	}
	if got := len(mergedTbl.Entries); got != 3 {
		t.Errorf("merged entries after insert = %d, want 3 (I(A)·N(B) amplification)", got)
	}
}

func TestRuntimeCounterTranslation(t *testing.T) {
	prog := ternaryProgram(t)
	cfg := opt.DefaultConfig()
	cfg.TopKFrac = 1
	cfg.EnableMerge = false
	cfg.EnableReorder = false
	rt, nic, col := newRig(t, prog, cfg)
	gen := trafficgen.New(5, 0)
	gen.AddFlows(trafficgen.UniformFlows(6, 10)...)
	drive(nic, gen, 2000)
	if _, err := rt.OptimizeOnce(time.Second); err != nil {
		t.Fatal(err)
	}
	// Cache deployed; drive more traffic (mostly hits).
	drive(nic, gen, 2000)
	optProf := col.Snapshot()
	origProf := rt.cmap.Translate(optProf, rt.Original())
	// Original tables should be credited with (roughly) all traffic even
	// though most packets short-circuited through the cache.
	if got := origProf.TableTotal("t1"); got < 1500 {
		t.Errorf("translated t1 total = %d, want ~2000", got)
	}
}

func TestRuntimeRunLoopStops(t *testing.T) {
	prog := aclProgram(t)
	rt, _, _ := newRig(t, prog, opt.DefaultConfig())
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		rt.Run(5*time.Millisecond, stop)
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop")
	}
	if len(rt.History()) == 0 {
		t.Error("no rounds recorded")
	}
}
