package core

import (
	"testing"
	"time"

	"pipeleon/internal/opt"
	"pipeleon/internal/trafficgen"
)

// Change-triggered optimization (§2.3): steady traffic must not re-run the
// search every window; a traffic change must.
func TestRuntimeSkipsUnchangedProfiles(t *testing.T) {
	prog := aclProgram(t)
	cfg := opt.DefaultConfig()
	cfg.TopKFrac = 1
	cfg.ProfileChangeThreshold = 0.1
	rt, nic, _ := newRig(t, prog, cfg)

	gen := trafficgen.New(1, 0)
	gen.AddFlows(trafficgen.DropTargetedFlows(2, 2000, "tcp.dport", 23, 0.8)...)

	// Round 1 always searches (no baseline costs yet).
	drive(nic, gen, 3000)
	rep1, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.SkippedUnchanged {
		t.Fatal("first round must not be skipped")
	}
	// Rounds 2-4 with statistically identical traffic: skipped.
	skipped := 0
	for i := 0; i < 3; i++ {
		drive(nic, gen, 3000)
		rep, err := rt.OptimizeOnce(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if rep.SkippedUnchanged {
			skipped++
		}
	}
	if skipped < 2 {
		t.Errorf("steady traffic: %d/3 rounds skipped, want >=2", skipped)
	}

	// A drop-pattern flip must trigger a fresh search.
	gen2 := trafficgen.New(3, 0)
	gen2.AddFlows(trafficgen.DropTargetedFlows(4, 2000, "tcp.sport", 1111, 0.8)...)
	drive(nic, gen2, 3000)
	rep, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedUnchanged {
		t.Error("traffic change must trigger a new round")
	}
}

func TestCostsChanged(t *testing.T) {
	old := map[string]float64{"a": 100, "b": 50}
	if costsChanged(old, map[string]float64{"a": 104, "b": 51}, 0.1) {
		t.Error("4% move should be below a 10% threshold")
	}
	if !costsChanged(old, map[string]float64{"a": 150, "b": 50}, 0.1) {
		t.Error("50% move must trigger")
	}
	if !costsChanged(old, map[string]float64{"a": 100, "b": 50, "c": 10}, 0.1) {
		t.Error("new pipelet must trigger")
	}
	if !costsChanged(old, map[string]float64{"a": 100}, 0.1) {
		t.Error("disappearing pipelet must trigger")
	}
	if costsChanged(old, old, 0.1) {
		t.Error("identical costs must not trigger")
	}
}
