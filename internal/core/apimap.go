package core

import (
	"fmt"

	"pipeleon/internal/opt"
	"pipeleon/internal/p4ir"
)

// API mapping (§2.3: "Pipeleon ensures the same program management APIs
// (e.g., entry insertion) by mapping the API calls to the original program
// to the optimized version").
//
// The original program is the source of truth for entries: every operation
// applies there first, then propagates to the deployed layout. Tables that
// survive in the optimized program take the fast path (direct device
// update, which also invalidates any covering runtime cache). Tables that
// were consumed by a merge require regenerating the merged cross-product —
// the runtime re-applies the active plan against the updated original and
// swaps the result in, which is exactly the I(T_A)·N(T_B) update
// amplification the cost model charges merges for (§3.2.3).

// plan returns the currently deployed plan (options applied to orig).
func (r *Runtime) planLocked() []*opt.Option { return r.activePlan }

// InsertEntry adds an entry to a table of the *original* program and
// propagates the change to the deployed layout.
func (r *Runtime) InsertEntry(table string, e p4ir.Entry) error {
	return r.entryOp(table, func(t *p4ir.Table) error {
		if len(e.Match) != len(t.Keys) {
			return fmt.Errorf("core: entry arity %d != %d keys", len(e.Match), len(t.Keys))
		}
		if t.Action(e.Action) == nil {
			return fmt.Errorf("core: unknown action %q", e.Action)
		}
		t.Entries = append(t.Entries, e.Clone())
		return nil
	}, func() error {
		return r.tgt.InsertEntry(table, e)
	})
}

// DeleteEntry removes the first entry with equal match values.
func (r *Runtime) DeleteEntry(table string, match []p4ir.MatchValue) error {
	return r.entryOp(table, func(t *p4ir.Table) error {
		for i := range t.Entries {
			if matchEqual(t.Entries[i].Match, match) {
				t.Entries = append(t.Entries[:i], t.Entries[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("core: no entry matching %v in %q", match, table)
	}, func() error {
		return r.tgt.DeleteEntry(table, match)
	})
}

// ModifyEntry rewrites the action/args of the first matching entry.
func (r *Runtime) ModifyEntry(table string, match []p4ir.MatchValue, action string, args []string) error {
	return r.entryOp(table, func(t *p4ir.Table) error {
		if t.Action(action) == nil {
			return fmt.Errorf("core: unknown action %q", action)
		}
		for i := range t.Entries {
			if matchEqual(t.Entries[i].Match, match) {
				t.Entries[i].Action = action
				t.Entries[i].Args = append([]string(nil), args...)
				return nil
			}
		}
		return fmt.Errorf("core: no entry matching %v in %q", match, table)
	}, func() error {
		return r.tgt.ModifyEntry(table, match, action, args)
	})
}

func matchEqual(a, b []p4ir.MatchValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// entryOp applies origMut to the original program, then propagates: fast
// path when the table exists untouched in the deployed program, slow path
// (plan re-application + swap) when a merge consumed it.
func (r *Runtime) entryOp(table string, origMut func(*p4ir.Table) error, fast func() error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ot, ok := r.orig.Tables[table]
	if !ok {
		return fmt.Errorf("core: no table %q in original program", table)
	}
	if err := origMut(ot); err != nil {
		return err
	}
	r.updCountsOrig[table]++

	ct, inCurrent := r.current.Tables[table]
	mergedCover := r.tableMergedLocked(table)
	if inCurrent && !mergedCover {
		// Keep the runtime's view of the deployed program in sync so the
		// next round's layout comparison does not force a spurious swap
		// (which would cold-start every cache).
		if err := origMut(ct); err != nil {
			return err
		}
		return fast()
	}
	// Slow path: regenerate the deployed program from the updated
	// original under the active plan.
	return r.redeployLocked()
}

// tableMergedLocked reports whether any merged (or merged-cache) table of
// the deployed program covers the given original table.
func (r *Runtime) tableMergedLocked(table string) bool {
	for merged := range r.cmap.MergedActions {
		if t, ok := r.current.Tables[merged]; ok {
			covers := t.Annotations[p4ir.AnnotCovers]
			if covers == "" {
				continue
			}
			for _, c := range splitCovers(covers) {
				if c == table {
					return true
				}
			}
		}
	}
	return r.cmap.Removed[table]
}

func splitCovers(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// redeployLocked re-applies the active plan to the (updated) original
// program and deploys the result to the target. Entry propagation is a
// definitive change, not a speculative optimization, so the deploy is
// committed immediately with no verification window.
func (r *Runtime) redeployLocked() error {
	plan := r.planLocked()
	if len(plan) == 0 {
		r.current = r.orig.Clone()
		r.cmap = opt.NewCounterMap()
		return r.deployCommitLocked()
	}
	rw, err := opt.Apply(r.orig, plan, r.cfg)
	if err != nil {
		// The plan no longer applies (e.g. entries changed shape);
		// fall back to the original program and let the next round
		// re-optimize.
		r.current = r.orig.Clone()
		r.cmap = opt.NewCounterMap()
		r.activePlan = nil
		return r.deployCommitLocked()
	}
	r.current = rw.Program
	r.cmap = rw.Map
	return r.deployCommitLocked()
}

func (r *Runtime) deployCommitLocked() error {
	if err := r.tgt.Deploy(r.current); err != nil {
		return err
	}
	return r.tgt.Commit()
}
