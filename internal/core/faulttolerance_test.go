package core

import (
	"testing"
	"time"

	"pipeleon/internal/costmodel"
	"pipeleon/internal/faultinject"
	"pipeleon/internal/nicsim"
	"pipeleon/internal/opt"
	"pipeleon/internal/profile"
	"pipeleon/internal/target"
	"pipeleon/internal/trafficgen"
)

// Fault matrix: for every injected fault class — deploy failure,
// mid-deploy crash (NIC silently left on the old program), cost-model
// misprediction (inflated gain), and stale/zeroed counter windows — the
// loop must record the failure in History and converge back to a healthy
// deployed state once the fault clears.

func newFaultRig(t *testing.T, inj faultinject.Injector) (*Runtime, *nicsim.NIC, *trafficgen.Generator) {
	t.Helper()
	prog := aclProgram(t)
	cfg := opt.DefaultConfig()
	cfg.TopKFrac = 1
	cfg.EnableCache = false
	cfg.EnableMerge = false
	col := profile.NewCollector()
	nic, err := nicsim.New(prog, nicsim.Config{
		Params:     costmodel.BlueField2(),
		Collector:  col,
		Instrument: true,
		Faults:     inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog, target.NewLocal(nic, col), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetFaultInjector(inj)
	gen := trafficgen.New(1, 0)
	gen.AddFlows(trafficgen.DropTargetedFlows(2, 2000, "tcp.dport", 23, 0.8)...)
	return rt, nic, gen
}

// assertHealthy checks the runtime's view matches the device and the hot
// ACL reorder is live.
func assertHealthy(t *testing.T, rt *Runtime, nic *nicsim.NIC) {
	t.Helper()
	if root := rt.Current().Root; root != "acl2" {
		t.Errorf("runtime root = %q, want acl2 deployed", root)
	}
	if !samePrograms(rt.Current(), nic.Program()) {
		t.Error("runtime and device disagree on the deployed program")
	}
}

func TestDeployFailureRecordedAndRetried(t *testing.T) {
	script := faultinject.NewScript()
	rt, nic, gen := newFaultRig(t, script)
	// Queue after construction: NewRuntime's initial deploy must stay
	// clean.
	script.Queue(faultinject.PointDeploy, faultinject.Decision{Fail: true})

	drive(nic, gen, 3000)
	rep, err := rt.OptimizeOnce(time.Second)
	if err == nil {
		t.Fatal("injected deploy failure must surface as an error")
	}
	if rep.DeployError == "" {
		t.Errorf("DeployError not recorded: %+v", rep)
	}
	if rep.Deployed {
		t.Error("failed deploy reported Deployed")
	}
	// The round must still be in History (satellite: no lost rounds).
	hist := rt.History()
	if len(hist) != 1 || hist[0].DeployError == "" {
		t.Fatalf("failed round missing from history: %+v", hist)
	}
	// Device untouched by the failed swap.
	if nic.Program().Root != rt.Original().Root {
		t.Error("failed deploy mutated the device program")
	}

	// Next round (fault cleared): the deploy is retried even though the
	// profile barely moved, and succeeds.
	drive(nic, gen, 3000)
	rep2, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Deployed {
		t.Fatalf("retry after failed deploy did not redeploy: %+v", rep2)
	}
	assertHealthy(t, rt, nic)
}

func TestMispredictedPlanRollsBackWithinOneRound(t *testing.T) {
	script := faultinject.NewScript()
	// Inflate the first plan's predicted gain 50x: the verification
	// window must catch the unrealized prediction and roll back.
	script.Queue(faultinject.PointPlan, faultinject.Decision{Scale: 50})
	rt, nic, gen := newFaultRig(t, script)
	guard := DefaultDeployGuard(gen.Batch)
	guard.MinRealizedGainFrac = 0.5
	guard.BlacklistRounds = 1
	rt.SetDeployGuard(guard)

	drive(nic, gen, 3000)
	rep, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RolledBack {
		t.Fatalf("mispredicted plan not rolled back within one round: %+v", rep)
	}
	// Rollback restored the original layout on both sides.
	if rt.Current().Root != "t1" || nic.Program().Root != "t1" {
		t.Errorf("rollback left roots runtime=%q device=%q, want t1", rt.Current().Root, nic.Program().Root)
	}

	// The offending plan is blacklisted for one round...
	drive(nic, gen, 3000)
	rep2, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.PlanBlacklisted {
		t.Errorf("rolled-back plan not blacklisted next round: %+v", rep2)
	}

	// ...then redeploys cleanly once the blacklist expires and the gain
	// prediction is no longer inflated.
	drive(nic, gen, 3000)
	rep3, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Deployed || rep3.RolledBack {
		t.Fatalf("post-blacklist round should deploy and verify: %+v", rep3)
	}
	assertHealthy(t, rt, nic)
}

func TestMidDeployCrashDetectedAndRolledBack(t *testing.T) {
	script := faultinject.NewScript()
	rt, nic, gen := newFaultRig(t, script)
	// The swap reports success but the NIC stays on the old program.
	script.Queue(faultinject.PointDeploy, faultinject.Decision{Silent: true})
	guard := DefaultDeployGuard(gen.Batch)
	guard.MinRealizedGainFrac = 0.5
	guard.BlacklistRounds = 1
	rt.SetDeployGuard(guard)

	drive(nic, gen, 3000)
	rep, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RolledBack {
		t.Fatalf("silent mid-deploy crash not detected: %+v", rep)
	}
	// After rollback, runtime and device agree again.
	if !samePrograms(rt.Current(), nic.Program()) {
		t.Error("runtime and device diverged after crash + rollback")
	}

	// Blacklist round, then healthy redeploy.
	drive(nic, gen, 3000)
	if _, err := rt.OptimizeOnce(time.Second); err != nil {
		t.Fatal(err)
	}
	drive(nic, gen, 3000)
	rep3, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Deployed || rep3.RolledBack {
		t.Fatalf("loop did not converge after mid-deploy crash: %+v", rep3)
	}
	assertHealthy(t, rt, nic)
}

func TestStaleCounterWindowRecovers(t *testing.T) {
	script := faultinject.NewScript()
	rt, nic, gen := newFaultRig(t, script)

	// Round 1: healthy deploy.
	drive(nic, gen, 3000)
	if rep, err := rt.OptimizeOnce(time.Second); err != nil || !rep.Deployed {
		t.Fatalf("round 1: rep=%+v err=%v", rep, err)
	}

	// Round 2: the counter window comes back zeroed.
	script.Queue(faultinject.PointCounters, faultinject.Decision{Zero: true})
	drive(nic, gen, 3000)
	if _, err := rt.OptimizeOnce(time.Second); err != nil {
		t.Fatal(err)
	}
	if script.Fired(faultinject.PointCounters) != 1 {
		t.Fatal("stale-counter fault did not fire")
	}

	// Round 3: counters are live again; the loop re-optimizes back to
	// the hot layout and runtime/device agree.
	drive(nic, gen, 3000)
	if _, err := rt.OptimizeOnce(time.Second); err != nil {
		t.Fatal(err)
	}
	assertHealthy(t, rt, nic)
	if len(rt.History()) != 3 {
		t.Errorf("history has %d rounds, want 3", len(rt.History()))
	}
}

func TestCircuitBreakerPausesAndRecovers(t *testing.T) {
	script := faultinject.NewScript()
	rt, nic, gen := newFaultRig(t, script)
	script.QueueN(faultinject.PointDeploy, 2, faultinject.Decision{Fail: true})
	guard := DeployGuard{BreakerThreshold: 2, BreakerCooldownRounds: 2}
	rt.SetDeployGuard(guard) // breaker/blacklist only: no Sampler, no verify

	// Two consecutive deploy failures open the breaker.
	for i := 0; i < 2; i++ {
		drive(nic, gen, 3000)
		rep, err := rt.OptimizeOnce(time.Second)
		if err == nil || rep.DeployError == "" {
			t.Fatalf("round %d: expected injected deploy failure, got %+v (%v)", i+1, rep, err)
		}
	}
	// Cooldown rounds: redeployment paused even though the fault cleared.
	for i := 0; i < 2; i++ {
		drive(nic, gen, 3000)
		rep, err := rt.OptimizeOnce(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.BreakerOpen {
			t.Fatalf("cooldown round %d: breaker not open: %+v", i+1, rep)
		}
		if rep.Deployed {
			t.Fatal("breaker-open round deployed")
		}
	}
	// Breaker closes: the loop deploys and converges.
	drive(nic, gen, 3000)
	rep, err := rt.OptimizeOnce(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deployed {
		t.Fatalf("post-cooldown round did not deploy: %+v", rep)
	}
	assertHealthy(t, rt, nic)
}

// TestRunLoopSurvivesFaultBurst drives the long-running Run loop through
// a deploy failure and a silent mid-deploy crash while traffic flows
// concurrently, and asserts the loop converges to a healthy deployed
// state with the failures on record. Run under -race this also exercises
// the new concurrent paths.
func TestRunLoopSurvivesFaultBurst(t *testing.T) {
	script := faultinject.NewScript()
	rt, nic, gen := newFaultRig(t, script)
	script.Queue(faultinject.PointDeploy,
		faultinject.Decision{Fail: true},
		faultinject.Decision{Silent: true})
	// The guard samples concurrently with the test goroutine's traffic, so
	// it draws from its own Split child of the hot-flow generator.
	guard := DefaultDeployGuard(gen.Split(1)[0].Batch)
	guard.MinRealizedGainFrac = 0.5
	guard.BlacklistRounds = 1
	rt.SetDeployGuard(guard)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		rt.Run(10*time.Millisecond, stop)
		close(done)
	}()

	deadline := time.Now().Add(10 * time.Second)
	converged := false
	for time.Now().Before(deadline) {
		drive(nic, gen, 500)
		if script.Pending(faultinject.PointDeploy) == 0 && rt.Current().Root == "acl2" {
			converged = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop")
	}
	if !converged {
		t.Fatalf("loop did not converge; history=%+v", rt.History())
	}
	if !samePrograms(rt.Current(), nic.Program()) {
		t.Error("runtime and device disagree after convergence")
	}
	var sawFailure, sawRollback bool
	for _, rep := range rt.History() {
		if rep.DeployError != "" {
			sawFailure = true
		}
		if rep.RolledBack {
			sawRollback = true
		}
	}
	if !sawFailure {
		t.Error("history does not record the injected deploy failure")
	}
	if !sawRollback {
		t.Error("history does not record the mid-deploy-crash rollback")
	}
}
