package core

import (
	"path/filepath"
	"testing"
	"time"

	"pipeleon/internal/opt"
	"pipeleon/internal/target"
)

// Golden-trace round trips: the full runtime loop — windowed profiling,
// search, deploy, hit-rate feedback — runs against recorded device
// responses with no emulator in the process. The traces were captured by
// cmd/tracegen from synthesized programs on the BlueField-2 and Agilio CX
// cost models; regenerate with `make traces` after intentional changes to
// the optimizer or trace format.

func replayRoundTrip(t *testing.T, tracePath string) {
	t.Helper()
	trace, err := target.LoadTrace(filepath.Join("..", "..", "testdata", "traces", tracePath))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := target.NewReplayer(trace, nil) // program embedded in the trace
	if err != nil {
		t.Fatal(err)
	}
	prog := rp.Program().Clone()

	cfg := opt.DefaultConfig()
	rt, err := NewRuntime(prog, rp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.pm.Name; got != trace.Capabilities.Model {
		t.Errorf("runtime planned with %q, trace recorded %q", got, trace.Capabilities.Model)
	}

	rounds := len(trace.Profiles)
	for i := 0; i < rounds; i++ {
		if _, err := rt.OptimizeOnce(time.Second); err != nil {
			t.Fatalf("round %d: %v", i+1, err)
		}
	}
	hist := rt.History()
	if len(hist) != rounds {
		t.Fatalf("history has %d rounds, want %d", len(hist), rounds)
	}
	// The recorded sessions found a profitable plan in round 1.
	if !hist[0].Deployed || hist[0].Gain <= 0 {
		t.Errorf("round 1 should deploy a profitable plan: %+v", hist[0])
	}
	if samePrograms(rt.Current(), rt.Original()) {
		t.Error("replayed loop never changed the layout")
	}
	// All recorded windows were consumed.
	if _, profiles, _ := rp.Remaining(); profiles != 0 {
		t.Errorf("%d recorded profile windows left unconsumed", profiles)
	}
}

func TestReplayRoundTripBlueField2(t *testing.T) { replayRoundTrip(t, "bluefield2.json") }

func TestReplayRoundTripAgilioCX(t *testing.T) { replayRoundTrip(t, "agiliocx.json") }
