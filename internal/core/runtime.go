// Package core implements the Pipeleon runtime (§2.3, Figure 3): it
// instruments a P4 program with counters, collects runtime profiles from
// the target in windows, translates counters from the optimized layout
// back to the original program through the counter map, detects the top-k
// hot pipelets, searches for the best optimization plan, deploys the
// rewritten program to the SmartNIC, and keeps the same program-management
// APIs working by mapping entry operations onto the optimized layout.
//
// The loop is feedback-driven: observed cache hit rates and entry-update
// rates flow into the next round's cost estimates, so an optimization that
// stops paying off (a cache invalidated by a burst of insertions, a merge
// whose tables started churning) is removed or replaced on the next round
// — the §3.2.2/§3.2.3 "monitors its actual performance at runtime"
// behaviour that drives Figure 11.
package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pipeleon/internal/analysis"
	"pipeleon/internal/costmodel"
	"pipeleon/internal/faultinject"
	"pipeleon/internal/opt"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/packet"
	"pipeleon/internal/pipelet"
	"pipeleon/internal/profile"
	"pipeleon/internal/target"
)

// Runtime is one Pipeleon control loop bound to a deployment target. The
// target may be the in-process emulator, a remote nicd, or a recorded
// trace — the loop is backend-agnostic (see internal/target).
type Runtime struct {
	mu sync.Mutex

	orig *p4ir.Program
	tgt  target.Target
	pm   costmodel.Params
	cfg  opt.Config

	current    *p4ir.Program
	cmap       *opt.CounterMap
	activePlan []*opt.Option

	// search is the warm optimizer session: it keeps the pipelet
	// partition, dependency analysis, evaluator arrays, and per-unit
	// candidate/verdict memos alive across rounds, so a round whose
	// profile drifted only locally re-enumerates only the touched units.
	search *opt.Session

	// sem is the deep-gate semantic checker (nil unless cfg.DeepVerify):
	// the original's path-class outcomes, precomputed once and reused by
	// every deploy gate to prove candidate programs equivalent.
	sem *analysis.SemanticChecker

	lastUpdateCounts map[string]uint64
	// updCountsOrig accumulates entry-update operations keyed by
	// original-program table names (through the API mapping).
	updCountsOrig     map[string]uint64
	lastUpdCountsOrig map[string]uint64

	round     int
	history   []RoundReport
	lastCosts map[string]float64

	// Fault tolerance (see guard.go): transactional deploys with
	// verify-and-rollback, plan blacklisting, and a redeploy circuit
	// breaker. All nil/zero when no guard is installed.
	guard            *DeployGuard
	faults           faultinject.Injector
	blacklist        map[string]int // plan key -> last blacklisted round
	consecFailures   int
	breakerOpenUntil int
}

// RoundReport summarizes one optimization round.
type RoundReport struct {
	Round int
	// Deployed is true when a new program was swapped in.
	Deployed bool
	// PlanSize is the number of options in the chosen plan.
	PlanSize int
	// Gain is the plan's estimated latency reduction (ns).
	Gain float64
	// ActivePlanGain is the re-scored gain of the already-deployed plan
	// under this round's profile (0 when none was active).
	ActivePlanGain float64
	// BaselineLatency is the modeled latency of the original program
	// under this round's profile.
	BaselineLatency float64
	// SearchTime is the wall-clock optimization time.
	SearchTime time.Duration
	// Plan describes the chosen options.
	Plan []string
	// HitRateFeedback lists span -> observed hit rate fed into estimates.
	HitRateFeedback map[string]float64
	// SkippedUnchanged is true when the round was skipped because no
	// pipelet's cost moved past Options.ProfileChangeThreshold.
	SkippedUnchanged bool
	// Error records a search/collection failure; the loop continues and
	// the round is still part of History.
	Error string
	// DeployError records a failed program swap (or failed rollback).
	DeployError string
	// RolledBack is true when the verification window contradicted the
	// plan's prediction and the checkpointed program was restored.
	RolledBack bool
	// VerifyDelta is the measured relative mean-latency change across
	// the deploy ((post-pre)/pre); only meaningful when a DeployGuard
	// with a Sampler verified the round.
	VerifyDelta float64
	// PlanBlacklisted is true when the chosen plan was withheld because
	// a recent rollback blacklisted it.
	PlanBlacklisted bool
	// BreakerOpen is true when the circuit breaker paused redeployment
	// for this round.
	BreakerOpen bool
	// Diagnostics holds the static-analysis findings for the candidate
	// program of this round (internal/analysis). Error-severity findings
	// block the deploy (DeployError says so); warnings are informational.
	Diagnostics []string
}

// NewRuntime builds a runtime for the given original program, deploying it
// unmodified to the target. Cost-model parameters come from the target's
// capabilities, so the optimizer always models the device it is driving.
func NewRuntime(orig *p4ir.Program, tgt target.Target, cfg opt.Config) (*Runtime, error) {
	if err := orig.Validate(); err != nil {
		return nil, err
	}
	// Semantic gate: the original program must itself lint clean of
	// Error-severity findings (unsound caches, overcommitted tiers, bad
	// entries) before it is deployed anywhere.
	if diags := analysis.Lint(orig, analysis.WithParams(tgt.Capabilities().Params)); diags.HasErrors() {
		return nil, fmt.Errorf("core: program failed static analysis: %s",
			strings.Join(diags.Errors().Strings(), "; "))
	}
	if cfg.HitRateOverride == nil {
		cfg.HitRateOverride = map[string]float64{}
	}
	r := &Runtime{
		orig:              orig.Clone(),
		tgt:               tgt,
		pm:                tgt.Capabilities().Params,
		cfg:               cfg,
		current:           orig.Clone(),
		cmap:              opt.NewCounterMap(),
		lastUpdateCounts:  map[string]uint64{},
		updCountsOrig:     map[string]uint64{},
		lastUpdCountsOrig: map[string]uint64{},
	}
	if cfg.DeepVerify {
		r.sem = analysis.NewSemanticChecker(r.orig)
	}
	// The session shares r.cfg by value; the HitRateOverride map inside is
	// aliased on purpose, so per-round feedback written by OptimizeOnce is
	// visible to the warm search (its memo folds the overrides into every
	// unit's material inputs).
	search, err := opt.NewSession(r.orig, r.pm, r.cfg)
	if err != nil {
		return nil, fmt.Errorf("core: partitioning program: %w", err)
	}
	r.search = search
	if err := tgt.Deploy(r.current); err != nil {
		return nil, err
	}
	if err := tgt.Commit(); err != nil {
		return nil, err
	}
	return r, nil
}

// Current returns the currently deployed program.
func (r *Runtime) Current() *p4ir.Program {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current
}

// Original returns the original (un-optimized) program.
func (r *Runtime) Original() *p4ir.Program { return r.orig }

// TranslatedCounters returns the current window's counters expressed
// against the ORIGINAL program's tables and actions, whatever layout is
// deployed — the read-side half of the management-API mapping. The
// collector is not reset.
func (r *Runtime) TranslatedCounters() *profile.Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap, err := r.tgt.Profile(false)
	if err != nil || snap == nil {
		snap = profile.New()
	}
	return r.cmap.Translate(snap, r.orig)
}

// History returns the reports of all completed rounds.
func (r *Runtime) History() []RoundReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RoundReport(nil), r.history...)
}

// OptimizeOnce runs one optimization round over the profile collected in
// the last window of the given duration (used to turn update counts into
// rates). It snapshots and resets the collector, so each round sees only
// the most recent window — "Pipeleon constantly monitors the profile; when
// it varies, a new round of optimization will be triggered".
//
// Every round — including failed ones — is recorded in History, so a
// deploy error or rollback is observable and the Run loop can continue.
// When a DeployGuard is installed, deployment is transactional: the
// previous program and counter map are checkpointed, a verification
// window compares measured latency against the plan's prediction, and a
// contradicted deploy is rolled back and its plan blacklisted.
func (r *Runtime) OptimizeOnce(window time.Duration) (RoundReport, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.round++
	report := RoundReport{Round: r.round, HitRateFeedback: map[string]float64{}}
	record := func() { r.history = append(r.history, report) }

	optProf, perr := r.tgt.Profile(true)
	if perr != nil {
		// The window is lost (e.g. the remote device is unreachable).
		// Record the round and let the next window retry.
		report.Error = perr.Error()
		record()
		return report, fmt.Errorf("core: profile window: %w", perr)
	}
	if optProf == nil {
		optProf = profile.New()
	}
	if d := r.faultAt(faultinject.PointCounters); d.Zero {
		// Stale/wiped counter window: the device returned no usable
		// profile. Proceed with an empty window rather than stale data;
		// the next healthy window re-triggers optimization.
		optProf = profile.New()
	}

	// Entry-update rates: delta of data-plane update counts over the
	// window, attributed to original table names via the API mapping's
	// own accounting (updCountsOrig).
	secs := window.Seconds()
	if secs <= 0 {
		secs = 1
	}
	for table, cnt := range r.updCountsOrig {
		delta := cnt - r.lastUpdCountsOrig[table]
		optProf.UpdateRates[table] = float64(delta) / secs
		r.lastUpdCountsOrig[table] = cnt
	}

	// Hit-rate feedback: observed rates of deployed caches override the
	// default estimate for the same span next round. Best-effort: a
	// backend without cache visibility just skips the feedback.
	caches, _ := r.tgt.CacheStats()
	for _, cs := range caches {
		if spec, ok := r.current.Tables[cs.Table]; ok {
			if meta, isCache := spec.CacheMeta(); isCache {
				if rate, any := cs.HitRate(); any {
					key := opt.SpanKey(meta.Covers)
					r.cfg.HitRateOverride[key] = rate
					report.HitRateFeedback[key] = rate
				}
			}
		}
	}

	// Translate counters to the original program.
	origProf := r.cmap.Translate(optProf, r.orig)
	// Update rates were keyed by original names already.
	for t, rate := range optProf.UpdateRates {
		origProf.UpdateRates[t] = rate
	}

	// Circuit breaker: after repeated failed or rolled-back deploys,
	// pause redeployment (profiling continues) until the cooldown
	// expires, then force a full re-evaluation.
	if r.round <= r.breakerOpenUntil {
		report.BreakerOpen = true
		r.lastCosts = nil
		record()
		return report, nil
	}

	// Change detection (§2.3): re-optimize only when the profile
	// signature moved materially since the last round.
	newCosts := r.profileSignature(origProf)
	if r.cfg.ProfileChangeThreshold > 0 && r.lastCosts != nil {
		if !costsChanged(r.lastCosts, newCosts, r.cfg.ProfileChangeThreshold) {
			report.SkippedUnchanged = true
			r.lastCosts = newCosts
			record()
			return report, nil
		}
	}
	r.lastCosts = newCosts

	res, rw, err := r.search.SearchAndApply(origProf)
	if err != nil {
		report.Error = err.Error()
		record()
		return report, err
	}
	report.SearchTime = res.Elapsed
	report.BaselineLatency = res.BaselineLatency
	report.Gain = res.Gain
	report.PlanSize = len(res.Plan)
	for _, o := range res.Plan {
		report.Plan = append(report.Plan, o.String())
	}
	// Cost-model misprediction fault: an inflated predicted gain must be
	// caught by the verification window, not believed.
	if d := r.faultAt(faultinject.PointPlan); d.Scale > 0 {
		report.Gain = res.Gain * d.Scale
	}
	planKey := strings.Join(report.Plan, ";")
	if r.planBlacklistedLocked(planKey) {
		report.PlanBlacklisted = true
		// Force the next round to re-evaluate: the withheld plan must be
		// reconsidered once the blacklist expires even if the profile
		// holds still.
		r.lastCosts = nil
		record()
		return report, nil
	}

	next := r.orig
	nextMap := opt.NewCounterMap()
	nextPlan := res.Plan
	if rw != nil {
		next = rw.Program
		nextMap = rw.Map
	} else {
		nextPlan = nil
	}
	// Hysteresis: reconfigure only when the new plan beats the active
	// plan (re-scored under the fresh profile) by RedeployMargin —
	// otherwise keep the deployed layout and its warm caches.
	if len(r.activePlan) > 0 && rw != nil {
		curGain := r.search.ReScore(origProf, r.activePlan)
		report.ActivePlanGain = curGain
		if curGain > 0 && report.Gain < curGain*(1+r.cfg.RedeployMargin) {
			record()
			return report, nil
		}
	}
	// Deploy only when the layout actually changed.
	if !samePrograms(next, r.current) {
		// Static-analysis gate: a program with Error diagnostics never
		// reaches the device, whatever the search promised.
		if !r.deployGate(next, &report) {
			r.noteDeployFailureLocked()
			record()
			return report, fmt.Errorf("core: deploy %s", report.DeployError)
		}
		// Keep the pre-deploy bookkeeping; the target checkpoints the
		// program itself (Deploy stages, Commit/Rollback resolve it).
		// Measure the pre-deploy baseline on the same sample the
		// post-deploy window will replay.
		prevProg, prevMap, prevPlan := r.current, r.cmap, r.activePlan
		verifying := r.guard != nil && r.guard.Sampler != nil && rw != nil
		var sample []*packet.Packet
		var preM target.Measurement
		if verifying {
			sample = r.guard.Sampler(r.guard.verifyPackets())
			if len(sample) == 0 {
				verifying = false
			} else {
				// One discarded pass before each measurement warms the
				// caches, so pre and post compare steady state to steady
				// state: a freshly swapped program starts cold, and
				// measuring it against the warm incumbent would veto
				// every cache plan.
				var merr error
				_, _ = r.measureSample(sample)
				preM, merr = r.measureSample(sample)
				if merr != nil {
					// No usable baseline — deploy unverified rather than
					// veto the plan on a measurement failure.
					verifying = false
				}
			}
		}
		if err := r.tgt.Deploy(next); err != nil {
			report.DeployError = err.Error()
			r.noteDeployFailureLocked()
			record()
			return report, fmt.Errorf("core: deploy failed: %w", err)
		}
		r.current = next.Clone()
		r.cmap = nextMap
		r.activePlan = nextPlan
		report.Deployed = true
		if verifying {
			_, _ = r.measureSample(sample) // warm the fresh program's caches
			postM, merr := r.measureSample(sample)
			contradicted := false
			if merr != nil {
				// Can't confirm the deploy helped — fail safe and restore
				// the checkpoint.
				contradicted = true
				report.DeployError = fmt.Sprintf("verify measure failed: %v", merr)
			} else {
				delta := 0.0
				if preM.MeanLatencyNs > 0 {
					delta = (postM.MeanLatencyNs - preM.MeanLatencyNs) / preM.MeanLatencyNs
				}
				report.VerifyDelta = delta
				realized := preM.MeanLatencyNs - postM.MeanLatencyNs
				// The pre-deploy measurement ran on the currently deployed
				// (possibly already optimized) program, so the prediction to
				// hold the plan to is its gain *over the active plan*, not
				// over the original baseline — otherwise replacing a good
				// plan with a better one is judged against the sum of both
				// improvements and spuriously rolled back.
				predicted := report.Gain
				if report.ActivePlanGain > 0 {
					predicted -= report.ActivePlanGain
				}
				regressed := delta > r.guard.maxRegression()
				unrealized := r.guard.MinRealizedGainFrac > 0 &&
					predicted >= r.guard.minPredictedGain() &&
					realized < r.guard.MinRealizedGainFrac*predicted
				contradicted = regressed || unrealized
			}
			if contradicted {
				if err := r.tgt.Rollback(); err != nil {
					// Device wedged between two programs — the breaker
					// is the only remaining backstop.
					report.DeployError = fmt.Sprintf("rollback failed: %v", err)
					r.noteDeployFailureLocked()
					record()
					return report, fmt.Errorf("core: rollback failed: %w", err)
				}
				r.current = prevProg
				r.cmap = prevMap
				r.activePlan = prevPlan
				report.RolledBack = true
				r.blacklistLocked(planKey)
				r.noteDeployFailureLocked()
				record()
				return report, nil
			}
		}
		if err := r.tgt.Commit(); err != nil {
			report.DeployError = fmt.Sprintf("commit failed: %v", err)
			r.noteDeployFailureLocked()
			record()
			return report, fmt.Errorf("core: commit failed: %w", err)
		}
		r.consecFailures = 0
	} else {
		// Layout unchanged; refresh map/plan so entry ops stay mapped.
		if rw != nil {
			r.cmap = nextMap
			r.activePlan = nextPlan
		}
	}
	record()
	return report, nil
}

// profileSignature summarizes everything that should trigger a new
// optimization round when it moves: per-pipelet weighted costs, per-table
// drop rates (a drop flip at the last table changes no upstream cost but
// changes the best order), observed cache hit rates, and entry-update
// rates.
func (r *Runtime) profileSignature(prof *profile.Profile) map[string]float64 {
	out := map[string]float64{}
	part, err := pipelet.Form(r.orig, r.cfg.MaxPipeletLen)
	if err == nil {
		for _, c := range pipelet.RankByCost(r.orig, prof, r.pm, part) {
			out["cost:"+c.Pipelet.Head()] = c.Weighted
		}
	}
	for name, t := range r.orig.Tables {
		if t.HasDropAction() {
			if d := prof.DropProb(t); d > 0 {
				out["drop:"+name] = d
			}
		}
	}
	for span, rate := range r.cfg.HitRateOverride {
		if rate > 0 {
			out["hit:"+span] = rate
		}
	}
	for table, rate := range prof.UpdateRates {
		if rate > 0 {
			out["upd:"+table] = rate
		}
	}
	return out
}

// costsChanged reports whether any pipelet cost moved by more than the
// relative threshold (new pipelets or disappearing costs always count).
func costsChanged(old, new map[string]float64, threshold float64) bool {
	for k, nv := range new {
		ov, ok := old[k]
		if !ok {
			if nv > 0 {
				return true
			}
			continue
		}
		base := ov
		if nv > base {
			base = nv
		}
		if base == 0 {
			continue
		}
		if diff := nv - ov; diff > base*threshold || -diff > base*threshold {
			return true
		}
	}
	for k := range old {
		if _, ok := new[k]; !ok {
			return true
		}
	}
	return false
}

// measureSample runs one verification measurement over the sample. With
// cfg.MeasureWorkers > 1 and a target that supports batch measurement
// (the emulator's ring-fed worker pool), the batch fans out across that
// many cores; otherwise — the default — it measures serially, which keeps
// recorded replay traces byte-stable.
func (r *Runtime) measureSample(sample []*packet.Packet) (target.Measurement, error) {
	if r.cfg.MeasureWorkers > 1 {
		if bm, ok := r.tgt.(target.BatchMeasurer); ok {
			return bm.MeasureParallel(sample, r.cfg.MeasureWorkers)
		}
	}
	return r.tgt.Measure(sample)
}

func samePrograms(a, b *p4ir.Program) bool {
	ja, err1 := a.MarshalJSON()
	jb, err2 := b.MarshalJSON()
	if err1 != nil || err2 != nil {
		return false
	}
	return string(ja) == string(jb)
}

// Run executes rounds until stop is closed, one per interval. It is the
// long-running form of the loop in Figure 3.
func (r *Runtime) Run(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			_, _ = r.OptimizeOnce(interval)
		}
	}
}
