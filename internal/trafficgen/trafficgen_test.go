package trafficgen

import (
	"math"
	"testing"

	"pipeleon/internal/packet"
)

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []*packet.Packet {
		g := New(42, 0)
		g.AddFlows(UniformFlows(7, 100)...)
		return g.Batch(50)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Flow() != b[i].Flow() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestPacketShape(t *testing.T) {
	g := New(1, 0)
	g.AddFlows(Flow{Src: 10, Dst: 20, SPort: 30, DPort: 40})
	p := g.Next()
	if !p.HasIPv4 || !p.HasTCP {
		t.Fatal("expected IPv4/TCP packet")
	}
	if p.WireLen != DefaultPacketBytes {
		t.Errorf("WireLen = %d, want %d (paper's 512B)", p.WireLen, DefaultPacketBytes)
	}
	k := p.Flow()
	if k.SrcAddr != 10 || k.DstAddr != 20 || k.SrcPort != 30 || k.DstPort != 40 {
		t.Errorf("flow = %+v", k)
	}
}

func TestUDPFlows(t *testing.T) {
	g := New(1, 0)
	g.AddFlows(Flow{Src: 1, Dst: 2, SPort: 53, DPort: 5353, Proto: packet.ProtoUDP})
	p := g.Next()
	if !p.HasUDP || p.UDP.SrcPort != 53 {
		t.Errorf("UDP flow mangled: %+v", p.UDP)
	}
}

func TestFieldOverrides(t *testing.T) {
	g := New(1, 0)
	g.AddFlows(Flow{Src: 1, Dst: 2, Fields: map[string]uint64{"ipv4.tos": 7, "meta.tenant": 3}})
	p := g.Next()
	if v, _ := p.Get("ipv4.tos"); v != 7 {
		t.Errorf("tos = %v", v)
	}
	if v, _ := p.Get("meta.tenant"); v != 3 {
		t.Errorf("meta.tenant = %v", v)
	}
}

func TestWeightedSampling(t *testing.T) {
	g := New(5, 0)
	g.AddFlows(
		Flow{Dst: 1, Weight: 9},
		Flow{Dst: 2, Weight: 1},
	)
	counts := map[uint32]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Next().IP.DstAddr]++
	}
	frac := float64(counts[1]) / 10000
	if math.Abs(frac-0.9) > 0.03 {
		t.Errorf("weighted flow frac = %v, want ~0.9", frac)
	}
}

func TestZipfSkewConcentratesFlows(t *testing.T) {
	g := New(5, 0)
	g.AddFlows(UniformFlows(9, 1000)...)
	g.SetSkew(1.1)
	counts := map[packet.FlowKey]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().Flow()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/20000 < 0.05 {
		t.Errorf("hottest flow carries %v, expected heavy concentration", float64(max)/20000)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct flows seen", len(counts))
	}
}

func TestDropTargetedFlows(t *testing.T) {
	flows := DropTargetedFlows(3, 1000, "tcp.dport", 23, 0.75)
	nDrop := 0
	for _, f := range flows {
		if f.DPort == 23 {
			nDrop++
		}
	}
	if math.Abs(float64(nDrop)/1000-0.75) > 0.001 {
		t.Errorf("drop-targeted fraction = %v, want 0.75", float64(nDrop)/1000)
	}
	// Uniform sampling then yields ~75% matching packets.
	g := New(4, 0)
	g.AddFlows(flows...)
	matched := 0
	for i := 0; i < 5000; i++ {
		if g.Next().TCP.DstPort == 23 {
			matched++
		}
	}
	if math.Abs(float64(matched)/5000-0.75) > 0.03 {
		t.Errorf("sampled drop traffic = %v", float64(matched)/5000)
	}
}

func TestCrossProductFlowsCardinality(t *testing.T) {
	flows := CrossProductFlows(6, 5000, map[string]int{
		"ipv4.srcAddr": 14,
		"tcp.dport":    14,
	})
	srcs := map[uint32]bool{}
	dports := map[uint16]bool{}
	for _, f := range flows {
		srcs[f.Src] = true
		dports[f.DPort] = true
	}
	if len(srcs) > 14 {
		t.Errorf("src cardinality %d exceeds requested 14", len(srcs))
	}
	if len(srcs) < 10 {
		t.Errorf("src cardinality %d too small", len(srcs))
	}
	if len(dports) > 14 {
		t.Errorf("dport cardinality %d exceeds requested 14", len(dports))
	}
}

func TestEmptyGeneratorStillProduces(t *testing.T) {
	g := New(1, 256)
	p := g.Next()
	if p == nil || p.WireLen != 256 {
		t.Error("empty generator should emit a default packet with configured size")
	}
}

func TestSplitChildrenAreIndependent(t *testing.T) {
	g := New(42, 0)
	g.AddFlows(UniformFlows(7, 200)...)
	g.SetSkew(0.9)

	// Deterministic: the same parent split the same way yields the same
	// child streams.
	g2 := New(42, 0)
	g2.AddFlows(UniformFlows(7, 200)...)
	g2.SetSkew(0.9)
	a, b := g.Split(3), g2.Split(3)
	for i := range a {
		pa, pb := a[i].Batch(20), b[i].Batch(20)
		for j := range pa {
			if pa[j].Flow() != pb[j].Flow() {
				t.Fatalf("child %d diverged at packet %d", i, j)
			}
		}
	}

	// Children don't see flows added to the parent after the split.
	kids := g.Split(2)
	g.AddFlows(Flow{Src: 1, Dst: 2, SPort: 3, DPort: 4})
	if kids[0].NumFlows() != 200 {
		t.Fatalf("child sees %d flows, want snapshot of 200", kids[0].NumFlows())
	}
}

func TestSplitChildrenRaceClean(t *testing.T) {
	g := New(7, 0)
	g.AddFlows(DropTargetedFlows(2, 500, "tcp.dport", 23, 0.5)...)
	g.SetSkew(1.1)
	kids := g.Split(4)
	done := make(chan struct{})
	for _, k := range kids {
		go func(k *Generator) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				if k.Next() == nil {
					t.Error("nil packet")
					return
				}
			}
		}(k)
	}
	// The parent keeps drawing concurrently with its children.
	for i := 0; i < 200; i++ {
		g.Next()
	}
	for range kids {
		<-done
	}
}
