// Package trafficgen synthesizes packet workloads for the emulator — the
// role TRex and trafgen play in the paper's testbed (§5.1: "We generate
// traffic workloads at line speed using TRex and trafgen. All traffic
// workloads use the packet size of 512 Bytes.").
//
// A Generator holds a set of weighted flows and samples packets from them,
// optionally with Zipf locality (a few hot flows carrying most packets),
// which is what drives realistic cache hit rates in nicsim. Helpers build
// the flow populations the evaluation needs: value cross products with
// controlled per-field cardinality, and drop-rate-targeted populations
// where a chosen fraction of traffic matches a table's dropping entries.
package trafficgen

import (
	"context"

	"pipeleon/internal/packet"
	"pipeleon/internal/ring"
	"pipeleon/internal/stats"
)

// DefaultPacketBytes is the paper's fixed packet size.
const DefaultPacketBytes = 512

// Flow is one traffic flow: a 5-tuple plus optional extra field overrides
// applied to each generated packet.
type Flow struct {
	Src, Dst     uint32
	SPort, DPort uint16
	Proto        uint8
	// Fields overrides arbitrary packet fields (e.g. "ipv4.tos") after
	// the 5-tuple is set.
	Fields map[string]uint64
	// Weight biases sampling when no Zipf skew is set (default 1).
	Weight float64
}

// Generator samples packets from a flow population.
type Generator struct {
	rng         *stats.RNG
	flows       []Flow
	zipf        *stats.Zipf
	skew        float64
	cum         []float64 // weight CDF when skew == 0
	packetBytes int
}

// New returns a generator with the given seed and packet size
// (0 = DefaultPacketBytes).
func New(seed uint64, packetBytes int) *Generator {
	if packetBytes <= 0 {
		packetBytes = DefaultPacketBytes
	}
	return &Generator{rng: stats.NewRNG(seed), packetBytes: packetBytes}
}

// AddFlows appends flows to the population.
func (g *Generator) AddFlows(flows ...Flow) {
	g.flows = append(g.flows, flows...)
	g.zipf = nil
	g.cum = nil
}

// SetSkew enables Zipf locality with exponent s over the flow ranks
// (0 = uniform / weight-proportional).
func (g *Generator) SetSkew(s float64) {
	g.skew = s
	g.zipf = nil
}

// NumFlows returns the population size.
func (g *Generator) NumFlows() int { return len(g.flows) }

// PacketBytes returns the configured wire size.
func (g *Generator) PacketBytes() int { return g.packetBytes }

func (g *Generator) prepare() {
	if g.skew > 0 {
		if g.zipf == nil {
			g.zipf = stats.NewZipf(g.rng, len(g.flows), g.skew)
		}
		return
	}
	if g.cum == nil {
		g.cum = make([]float64, len(g.flows))
		total := 0.0
		for i, f := range g.flows {
			w := f.Weight
			if w <= 0 {
				w = 1
			}
			total += w
			g.cum[i] = total
		}
		for i := range g.cum {
			g.cum[i] /= total
		}
	}
}

// nextFlow samples the flow the next packet belongs to.
func (g *Generator) nextFlow() Flow {
	if len(g.flows) == 0 {
		return Flow{Proto: packet.ProtoTCP}
	}
	g.prepare()
	var idx int
	if g.skew > 0 {
		idx = g.zipf.Sample()
	} else {
		u := g.rng.Float64()
		lo, hi := 0, len(g.cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if g.cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		idx = lo
	}
	return g.flows[idx]
}

// Next samples one packet.
func (g *Generator) Next() *packet.Packet {
	p := &packet.Packet{}
	g.buildInto(g.nextFlow(), p)
	return p
}

// NextInto samples one packet into p, overwriting it entirely. The
// allocation-free form of Next for ring producers that recycle packets.
func (g *Generator) NextInto(p *packet.Packet) {
	g.buildInto(g.nextFlow(), p)
}

// Split derives n independent child generators over the same flow
// population. A Generator is single-threaded (its RNG and sampling tables
// mutate on every Next), so concurrent producers each take one child:
// children share an immutable snapshot of the flows but own forked RNG
// state and lazily rebuilt sampling structures, so they never touch the
// parent's (or each other's) mutable state. Flows added to the parent
// after the split are not seen by the children.
func (g *Generator) Split(n int) []*Generator {
	if n < 1 {
		n = 1
	}
	flows := append([]Flow(nil), g.flows...)
	out := make([]*Generator, n)
	for i := range out {
		out[i] = &Generator{
			rng:         g.rng.Fork(),
			flows:       flows,
			skew:        g.skew,
			packetBytes: g.packetBytes,
		}
	}
	return out
}

// Batch samples n packets.
func (g *Generator) Batch(n int) []*packet.Packet {
	out := make([]*packet.Packet, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// BatchInto samples len(dst) packets in place, allocating only for nil
// slots — so a reused slice amortizes to zero allocations per batch.
func (g *Generator) BatchInto(dst []*packet.Packet) {
	for i := range dst {
		if dst[i] == nil {
			dst[i] = &packet.Packet{}
		}
		g.buildInto(g.nextFlow(), dst[i])
	}
}

// Produce synthesizes `total` packets (unbounded when total < 0) and
// pushes them into the ring, closing it on return so the consumer drains
// and exits. It stops early — returning how many packets were actually
// enqueued — when the ring is closed from the consumer side or ctx is
// canceled, so an abandoned consumer never strands the producer.
func (g *Generator) Produce(ctx context.Context, r *ring.SPSC[*packet.Packet], total int) int {
	defer r.Close()
	sent := 0
	for total < 0 || sent < total {
		p := &packet.Packet{}
		g.buildInto(g.nextFlow(), p)
		if !r.Push(ctx, p) {
			break
		}
		sent++
	}
	return sent
}

// buildInto overwrites p with a fresh packet for flow f.
func (g *Generator) buildInto(f Flow, p *packet.Packet) {
	proto := f.Proto
	if proto == 0 {
		proto = packet.ProtoTCP
	}
	*p = packet.Packet{
		Eth:     packet.Ethernet{Type: packet.EtherTypeIPv4},
		IP:      packet.IPv4{TTL: 64, Protocol: proto, SrcAddr: f.Src, DstAddr: f.Dst},
		HasIPv4: true,
		WireLen: g.packetBytes,
	}
	switch proto {
	case packet.ProtoUDP:
		p.HasUDP = true
		p.UDP.SrcPort, p.UDP.DstPort = f.SPort, f.DPort
	default:
		p.HasTCP = true
		p.TCP.SrcPort, p.TCP.DstPort = f.SPort, f.DPort
	}
	for field, v := range f.Fields {
		_ = p.Set(field, v)
	}
}

// CrossProductFlows builds `count` flows whose listed fields cycle through
// the given per-field cardinalities — the population that exposes the
// cache cross-product problem (§3.2.2, Figure 9c's "40000 different
// flows" with distinct match keys per table).
//
// fields maps field name -> number of distinct values. Values are small
// integers offset per field so different fields never collide.
func CrossProductFlows(seed uint64, count int, fields map[string]int) []Flow {
	rng := stats.NewRNG(seed)
	names := make([]string, 0, len(fields))
	for f := range fields {
		names = append(names, f)
	}
	// Sort for determinism.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	flows := make([]Flow, count)
	for i := range flows {
		f := Flow{
			Src:   0x0a000000 | uint32(rng.Intn(1<<16)),
			Dst:   0x0b000000 | uint32(rng.Intn(1<<16)),
			SPort: uint16(1024 + rng.Intn(60000)),
			DPort: uint16(1 + rng.Intn(1024)),
			Proto: packet.ProtoTCP,
		}
		for fi, name := range names {
			card := fields[name]
			if card < 1 {
				card = 1
			}
			v := uint64(rng.Intn(card)) + uint64(fi+1)*1000
			switch name {
			case "ipv4.srcAddr":
				f.Src = uint32(v)
			case "ipv4.dstAddr":
				f.Dst = uint32(v)
			case "tcp.sport":
				f.SPort = uint16(v)
			case "tcp.dport":
				f.DPort = uint16(v)
			default:
				if f.Fields == nil {
					f.Fields = map[string]uint64{}
				}
				f.Fields[name] = v
			}
		}
		flows[i] = f
	}
	return flows
}

// DropTargetedFlows builds a population where dropFrac of the flows carry
// field == dropValue (so a table dropping on that value drops that
// fraction of uniform traffic); the rest carry distinct non-matching
// values. Used by the reordering experiments to dial "Drop 25/50/75%".
func DropTargetedFlows(seed uint64, count int, field string, dropValue uint64, dropFrac float64) []Flow {
	rng := stats.NewRNG(seed)
	flows := make([]Flow, count)
	nDrop := int(float64(count)*dropFrac + 0.5)
	for i := range flows {
		f := Flow{
			Src:   0x0a000000 | uint32(rng.Intn(1<<20)),
			Dst:   0x0b000000 | uint32(rng.Intn(1<<20)),
			SPort: uint16(1024 + rng.Intn(60000)),
			DPort: uint16(1 + rng.Intn(60000)),
			Proto: packet.ProtoTCP,
		}
		v := dropValue
		if i >= nDrop {
			v = dropValue + 1 + uint64(rng.Intn(1<<20))
		}
		setField(&f, field, v)
		flows[i] = f
	}
	// Shuffle so drop flows interleave.
	rng.Shuffle(len(flows), func(i, j int) { flows[i], flows[j] = flows[j], flows[i] })
	return flows
}

func setField(f *Flow, field string, v uint64) {
	switch field {
	case "ipv4.srcAddr":
		f.Src = uint32(v)
	case "ipv4.dstAddr":
		f.Dst = uint32(v)
	case "tcp.sport":
		f.SPort = uint16(v)
	case "tcp.dport":
		f.DPort = uint16(v)
	default:
		if f.Fields == nil {
			f.Fields = map[string]uint64{}
		}
		f.Fields[field] = v
	}
}

// UniformFlows builds count fully random distinct-ish flows.
func UniformFlows(seed uint64, count int) []Flow {
	rng := stats.NewRNG(seed)
	flows := make([]Flow, count)
	for i := range flows {
		flows[i] = Flow{
			Src:   uint32(rng.Uint64()),
			Dst:   uint32(rng.Uint64()),
			SPort: uint16(1024 + rng.Intn(60000)),
			DPort: uint16(1 + rng.Intn(60000)),
			Proto: packet.ProtoTCP,
		}
	}
	return flows
}
