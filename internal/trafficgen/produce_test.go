package trafficgen

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pipeleon/internal/packet"
	"pipeleon/internal/ring"
)

// Produce into a ring must emit exactly the stream Batch would: the ring
// datapath is a transport, not a resample.
func TestProduceMatchesBatch(t *testing.T) {
	mk := func() *Generator {
		g := New(42, 0)
		g.AddFlows(UniformFlows(7, 64)...)
		g.SetSkew(0.9)
		return g
	}
	const n = 500
	want := mk().Batch(n)

	r := ring.New[*packet.Packet](16)
	done := make(chan int, 1)
	go func() { done <- mk().Produce(context.Background(), r, n) }()

	got := make([]*packet.Packet, 0, n)
	for {
		p, ok := r.Pop(context.Background())
		if !ok {
			break
		}
		got = append(got, p)
	}
	if sent := <-done; sent != n {
		t.Fatalf("Produce sent %d, want %d", sent, n)
	}
	if len(got) != n {
		t.Fatalf("consumer popped %d, want %d", len(got), n)
	}
	for i := range got {
		if got[i].Flow() != want[i].Flow() {
			t.Fatalf("packet %d: ring stream diverged from Batch stream", i)
		}
	}
}

// An abandoned consumer must not strand the producer: when the consumer
// closes the ring and walks away, Produce unwinds promptly (Push observes
// the close) instead of spinning forever against a full ring.
func TestProduceAbandonedConsumerUnwinds(t *testing.T) {
	g := New(7, 0)
	g.AddFlows(UniformFlows(8, 32)...)
	r := ring.New[*packet.Packet](4)

	done := make(chan int, 1)
	go func() { done <- g.Produce(context.Background(), r, -1) }() // unbounded

	// Consume a few packets, then abandon.
	for i := 0; i < 10; i++ {
		if _, ok := r.Pop(context.Background()); !ok {
			t.Fatal("ring closed before the consumer abandoned it")
		}
	}
	r.Close()

	select {
	case sent := <-done:
		if sent < 10 {
			t.Fatalf("Produce reported %d sent, but 10 were consumed", sent)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Produce leaked: still running 5s after the consumer closed the ring")
	}
	if !r.Closed() {
		t.Fatal("ring must stay closed after Produce returns")
	}
}

// Context cancellation is the other unwind path: with no consumer at all,
// a Produce blocked on a full ring must return once its context is
// canceled.
func TestProduceEarlyContextCancelUnwinds(t *testing.T) {
	g := New(9, 0)
	g.AddFlows(UniformFlows(10, 16)...)
	r := ring.New[*packet.Packet](2)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() { done <- g.Produce(ctx, r, 100) }()

	// Let the producer fill the ring and start spinning, then cancel.
	for r.Len() < r.Cap() {
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case sent := <-done:
		if sent >= 100 {
			t.Fatalf("Produce sent %d with no consumer and a %d-slot ring", sent, r.Cap())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Produce leaked: still running 5s after context cancellation")
	}
	// Produce closes the ring on its way out so a late consumer drains and
	// stops rather than blocking.
	if !r.Closed() {
		t.Fatal("ring not closed after canceled Produce returned")
	}
}

// Split children feeding rings stay deterministic: the same parent split
// the same way produces identical per-child ring streams across runs —
// the property that makes parallel measurement reproducible.
func TestSplitProduceDeterministic(t *testing.T) {
	run := func() [][]packet.FlowKey {
		g := New(42, 0)
		g.AddFlows(UniformFlows(7, 100)...)
		g.SetSkew(0.8)
		kids := g.Split(3)
		out := make([][]packet.FlowKey, len(kids))
		for i, k := range kids {
			r := ring.New[*packet.Packet](8)
			done := make(chan int, 1)
			go func() { done <- k.Produce(context.Background(), r, 120) }()
			for {
				p, ok := r.Pop(context.Background())
				if !ok {
					break
				}
				out[i] = append(out[i], p.Flow())
			}
			<-done
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("child %d: %d vs %d packets across runs", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if !reflect.DeepEqual(a[i][j], b[i][j]) {
				t.Fatalf("child %d packet %d: flow diverged across runs", i, j)
			}
		}
	}
}
