package fleet

// DeviceStatus is one device's machine-readable health snapshot.
type DeviceStatus struct {
	Name  string `json:"name"`
	Model string `json:"model"`
	State string `json:"state"`
	// Permanent marks a quarantine that only an operator Recover lifts
	// (restart budget exhausted).
	Permanent bool `json:"permanent,omitempty"`

	ProbeFailStreak  int `json:"probe_fail_streak"`
	DeployFailStreak int `json:"deploy_fail_streak"`
	Restarts         int `json:"restarts"`

	Probes      uint64 `json:"probes"`
	ProbeFails  uint64 `json:"probe_fails"`
	Deploys     uint64 `json:"deploys"`
	DeployFails uint64 `json:"deploy_fails"`
	Commits     uint64 `json:"commits"`
	RolledBack  uint64 `json:"rolled_back"`
	Quarantines uint64 `json:"quarantines"`
	LastError   string `json:"last_error,omitempty"`
}

// Status is the aggregate fleet snapshot fleetd serves and `p4cctl fleet
// status` renders.
type Status struct {
	Devices []DeviceStatus `json:"devices"`

	Healthy     int `json:"healthy"`
	Degraded    int `json:"degraded"`
	Quarantined int `json:"quarantined"`
	Recovering  int `json:"recovering"`
	// Serving = Healthy + Degraded: the graceful-degradation headline —
	// how much of the fleet still takes traffic and rollouts.
	Serving int `json:"serving"`

	Rollouts       uint64 `json:"rollouts"`
	HaltedRollouts uint64 `json:"halted_rollouts"`
	FleetRollbacks uint64 `json:"fleet_rollbacks"`

	PlanCache PlanCacheStats `json:"plan_cache"`
	// OptSearch aggregates the warm optimizer-session pool: searches
	// served, per-unit candidate-memo and verdict-memo hit rates, and
	// cumulative search time.
	OptSearch SearchSessionStats `json:"opt_search"`
}

// Status returns the aggregate fleet snapshot.
func (c *Controller) Status() Status {
	devs := c.snapshotDevices()
	st := Status{Devices: make([]DeviceStatus, 0, len(devs))}
	for _, d := range devs {
		d.mu.Lock()
		ds := DeviceStatus{
			Name:             d.name,
			Model:            d.model,
			State:            d.state.String(),
			Permanent:        d.permanent,
			ProbeFailStreak:  d.probeConsecFail,
			DeployFailStreak: d.deployConsecFail,
			Restarts:         d.restarts,
			Probes:           d.probes,
			ProbeFails:       d.probeFails,
			Deploys:          d.deploys,
			DeployFails:      d.deployFails,
			Commits:          d.commits,
			RolledBack:       d.rollbacks,
			Quarantines:      d.quarantines,
			LastError:        d.lastErr,
		}
		switch d.state {
		case Healthy:
			st.Healthy++
		case Degraded:
			st.Degraded++
		case Quarantined:
			st.Quarantined++
		case Recovering:
			st.Recovering++
		}
		d.mu.Unlock()
		st.Devices = append(st.Devices, ds)
	}
	st.Serving = st.Healthy + st.Degraded
	c.mu.Lock()
	st.Rollouts = c.rollouts
	st.HaltedRollouts = c.haltedRollouts
	st.FleetRollbacks = c.fleetRollbacks
	c.mu.Unlock()
	st.PlanCache = c.cache.Stats()
	st.OptSearch = c.sessions.stats()
	return st
}

// DeviceState returns the named device's current state (testing and CLI
// convenience).
func (c *Controller) DeviceState(name string) (State, error) {
	d, err := c.lookup(name)
	if err != nil {
		return Healthy, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state, nil
}
