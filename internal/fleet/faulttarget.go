package fleet

import (
	"time"

	"pipeleon/internal/faultinject"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/packet"
	"pipeleon/internal/profile"
	"pipeleon/internal/target"
)

// FaultTarget wraps a Target with an injector consulted at the fleet's
// device-facing fault points, so fleet tests and the fleetd simulator can
// script device failures without a real crashing NIC:
//
//   - PointDeploy around Deploy — Fail rejects the deploy (leaving the old
//     program running, like a nicd that died mid-push), Delay stalls it.
//   - PointProbe around Profile — Fail models an unreachable device,
//     Delay a hung probe (exercising the probe timeout), Zero an empty
//     profile from a freshly restarted device.
//   - PointMeasure around Measure — Fail rejects the measurement, Scale
//     multiplies the measured latencies, modelling a deploy that actually
//     regressed the device so verification must catch it.
//
// All other Target methods pass through.
type FaultTarget struct {
	target.Target
	Faults faultinject.Injector
}

// WithFaults wraps tgt with the injector.
func WithFaults(tgt target.Target, inj faultinject.Injector) *FaultTarget {
	return &FaultTarget{Target: tgt, Faults: inj}
}

// Deploy consults PointDeploy before delegating.
func (f *FaultTarget) Deploy(prog *p4ir.Program) error {
	d := faultinject.At(f.Faults, faultinject.PointDeploy)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Fail {
		return d.Error()
	}
	if d.Silent {
		// Report success without applying — the device silently kept the
		// old program, so the rollout's fingerprint bookkeeping is wrong.
		return nil
	}
	return f.Target.Deploy(prog)
}

// Profile consults PointProbe before delegating.
func (f *FaultTarget) Profile(reset bool) (*profile.Profile, error) {
	d := faultinject.At(f.Faults, faultinject.PointProbe)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Fail {
		return nil, d.Error()
	}
	if d.Zero {
		return profile.New(), nil
	}
	return f.Target.Profile(reset)
}

// Measure consults PointMeasure before delegating.
func (f *FaultTarget) Measure(pkts []*packet.Packet) (target.Measurement, error) {
	d := faultinject.At(f.Faults, faultinject.PointMeasure)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Fail {
		return target.Measurement{}, d.Error()
	}
	m, err := f.Target.Measure(pkts)
	if err == nil && d.Scale > 0 {
		m.MeanLatencyNs *= d.Scale
		m.P99LatencyNs *= d.Scale
	}
	return m, err
}
