package fleet

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the fleet snapshot.
// Hand-rolled on purpose: the format is lines of `name{labels} value`
// plus # HELP / # TYPE headers, and a dependency-free writer keeps fleetd
// scrapable without pulling a client library into the build.

// promEscape escapes a label value per the exposition format: backslash,
// double quote, and newline.
var promEscape = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) header(name, help, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) value(name, labels string, v float64) {
	if p.err != nil {
		return
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	// %g keeps integers integral ("3", not "3.000000") and large counters
	// exact well past any realistic uptime.
	_, p.err = fmt.Fprintf(p.w, "%s%s %g\n", name, labels, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.value(name, "", v)
}

func (p *promWriter) counter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.value(name, "", v)
}

func deviceLabel(name string) string {
	return `device="` + promEscape.Replace(name) + `"`
}

// WriteMetrics renders the snapshot in Prometheus text format. fleetd
// serves it at GET /metrics; any scraper pointed there gets the same
// counters /v1/status reports as JSON.
func WriteMetrics(w io.Writer, st Status) error {
	p := &promWriter{w: w}

	p.gauge("pipeleon_fleet_devices", "Devices registered with the fleet controller.", float64(len(st.Devices)))
	p.header("pipeleon_fleet_devices_by_state", "Devices per health state.", "gauge")
	p.value("pipeleon_fleet_devices_by_state", `state="healthy"`, float64(st.Healthy))
	p.value("pipeleon_fleet_devices_by_state", `state="degraded"`, float64(st.Degraded))
	p.value("pipeleon_fleet_devices_by_state", `state="quarantined"`, float64(st.Quarantined))
	p.value("pipeleon_fleet_devices_by_state", `state="recovering"`, float64(st.Recovering))
	p.gauge("pipeleon_fleet_serving", "Devices taking traffic (healthy + degraded).", float64(st.Serving))

	p.counter("pipeleon_fleet_rollouts_total", "Staged rollouts attempted.", float64(st.Rollouts))
	p.counter("pipeleon_fleet_rollouts_halted_total", "Rollouts halted by the failure-fraction gate.", float64(st.HaltedRollouts))
	p.counter("pipeleon_fleet_rollbacks_total", "Fleet-wide rollbacks.", float64(st.FleetRollbacks))

	p.gauge("pipeleon_plancache_entries", "Plans held in the shared plan cache.", float64(st.PlanCache.Entries))
	p.counter("pipeleon_plancache_hits_total", "Plan-cache lookups served from cache.", float64(st.PlanCache.Hits))
	p.counter("pipeleon_plancache_misses_total", "Plan-cache lookups that ran a fresh search.", float64(st.PlanCache.Misses))

	p.gauge("pipeleon_optsearch_sessions", "Live warm optimizer sessions.", float64(st.OptSearch.Sessions))
	p.counter("pipeleon_optsearch_pool_hits_total", "Session-pool lookups that reused a warm session.", float64(st.OptSearch.PoolHits))
	p.counter("pipeleon_optsearch_pool_misses_total", "Session-pool lookups that built a session.", float64(st.OptSearch.PoolMisses))
	p.counter("pipeleon_optsearch_rounds_total", "Optimization searches served.", float64(st.OptSearch.Rounds))
	p.counter("pipeleon_optsearch_unit_memo_hits_total", "Per-unit candidate-memo hits.", float64(st.OptSearch.UnitHits))
	p.counter("pipeleon_optsearch_unit_memo_misses_total", "Per-unit candidate-memo misses.", float64(st.OptSearch.UnitMisses))
	p.counter("pipeleon_optsearch_verify_memo_hits_total", "Rewrite-verdict-memo hits.", float64(st.OptSearch.VerifyHits))
	p.counter("pipeleon_optsearch_verify_memo_misses_total", "Rewrite-verdict-memo misses.", float64(st.OptSearch.VerifyMisses))
	p.counter("pipeleon_optsearch_search_seconds_total", "Cumulative wall-clock search time.", float64(st.OptSearch.TotalSearchNs)/1e9)

	// Per-device series, sorted for a stable scrape (Status preserves
	// registration order; scrapes should not churn on it).
	devs := append([]DeviceStatus(nil), st.Devices...)
	sort.Slice(devs, func(i, j int) bool { return devs[i].Name < devs[j].Name })

	perDev := []struct {
		name, help string
		get        func(DeviceStatus) float64
	}{
		{"pipeleon_device_probes_total", "Health probes sent.", func(d DeviceStatus) float64 { return float64(d.Probes) }},
		{"pipeleon_device_probe_failures_total", "Health probes failed.", func(d DeviceStatus) float64 { return float64(d.ProbeFails) }},
		{"pipeleon_device_deploys_total", "Program deploys attempted.", func(d DeviceStatus) float64 { return float64(d.Deploys) }},
		{"pipeleon_device_deploy_failures_total", "Program deploys failed.", func(d DeviceStatus) float64 { return float64(d.DeployFails) }},
		{"pipeleon_device_commits_total", "Deploys committed.", func(d DeviceStatus) float64 { return float64(d.Commits) }},
		{"pipeleon_device_rollbacks_total", "Per-device rollbacks.", func(d DeviceStatus) float64 { return float64(d.RolledBack) }},
		{"pipeleon_device_quarantines_total", "Times the breaker quarantined the device.", func(d DeviceStatus) float64 { return float64(d.Quarantines) }},
		{"pipeleon_device_restarts_total", "Recovery restarts consumed.", func(d DeviceStatus) float64 { return float64(d.Restarts) }},
	}
	for _, m := range perDev {
		p.header(m.name, m.help, "counter")
		for _, d := range devs {
			p.value(m.name, deviceLabel(d.Name), m.get(d))
		}
	}
	p.header("pipeleon_device_up", "1 when the device is serving (healthy or degraded).", "gauge")
	for _, d := range devs {
		up := 0.0
		if d.State == Healthy.String() || d.State == Degraded.String() {
			up = 1
		}
		p.value("pipeleon_device_up", deviceLabel(d.Name), up)
	}
	return p.err
}
