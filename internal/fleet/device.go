package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pipeleon/internal/target"
)

// State is one device's position in the fleet health state machine:
//
//	Healthy ──probe/deploy failures──▶ Degraded ──streak──▶ Quarantined
//	   ▲                                  │                     │ sit-out
//	   │◀───── probation succeeds ── Recovering ◀───────────────┘
//	   (a failure during probation re-quarantines)
//
// Healthy and Degraded devices serve traffic and receive rollouts;
// Quarantined devices are excluded from everything until their sit-out
// expires, then re-probed under probation. The transitions mirror the
// PR-2 circuit breaker: consecutive deploy failures (not probe blips)
// are what mark a device as flapping.
type State int

// States, in degradation order.
const (
	Healthy State = iota
	Degraded
	Quarantined
	Recovering
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	case Recovering:
		return "recovering"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// HealthPolicy tunes the per-device state machine. The zero value is not
// useful; start from DefaultHealthPolicy.
type HealthPolicy struct {
	// ProbeTimeout bounds one health probe (a hung device must not stall
	// its supervisor loop).
	ProbeTimeout time.Duration
	// DegradedAfter is the consecutive probe-failure streak that marks a
	// device Degraded.
	DegradedAfter int
	// QuarantineAfter is the consecutive probe-failure streak that
	// quarantines a device.
	QuarantineAfter int
	// BreakerThreshold is the consecutive deploy/verify-failure streak
	// that quarantines a device — the fleet-level analogue of the
	// runtime's redeploy circuit breaker. Probe successes do not reset
	// this streak; only a successful deploy does, so a device that pings
	// fine but keeps failing rollouts is still caught.
	BreakerThreshold int
	// QuarantineProbes is how many probe rounds a quarantined device sits
	// out before probation begins.
	QuarantineProbes int
	// ProbationProbes is the consecutive probe successes a Recovering
	// device needs for re-admission to Healthy.
	ProbationProbes int
	// MaxProbeBackoff caps the extra probe rounds a failing device sits
	// out between probes (backoff grows with the failure streak).
	MaxProbeBackoff int
	// RestartBudget is how many panics the device's supervised loop
	// absorbs (restarting the loop each time) before the device is
	// permanently quarantined pending manual Recover.
	RestartBudget int
}

// DefaultHealthPolicy returns the production defaults.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{
		ProbeTimeout:     2 * time.Second,
		DegradedAfter:    1,
		QuarantineAfter:  3,
		BreakerThreshold: 3,
		QuarantineProbes: 2,
		ProbationProbes:  2,
		MaxProbeBackoff:  3,
		RestartBudget:    3,
	}
}

// device is one supervised fleet member.
type device struct {
	name  string
	tgt   target.Target
	model string

	mu sync.Mutex
	// State machine.
	state            State
	probeConsecFail  int
	deployConsecFail int
	consecOK         int
	sitOut           int // probe rounds to skip (failure backoff or quarantine sit-out)
	permanent        bool
	restarts         int
	lastErr          string
	// Cumulative counters (see DeviceStatus).
	probes, probeFails              uint64
	deploys, deployFails, rollbacks uint64
	commits                         uint64
	quarantines                     uint64
}

// errProbePanic wraps a panic recovered inside a device operation, so the
// supervisor can charge it against the restart budget instead of treating
// it like an ordinary transient failure.
var errProbePanic = errors.New("fleet: device operation panicked")

// serving reports whether the device should receive traffic and rollouts.
func (d *device) serving() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state == Healthy || d.state == Degraded
}

// noteProbeSuccessLocked applies a successful probe to the state machine.
func (d *device) noteProbeSuccessLocked(pol HealthPolicy) {
	d.probeConsecFail = 0
	d.consecOK++
	d.lastErr = ""
	switch d.state {
	case Degraded:
		// Liveness restored. The deploy-failure streak survives: a device
		// that pings fine but flaps rollouts must still hit the breaker.
		d.state = Healthy
	case Recovering:
		if d.consecOK >= pol.ProbationProbes {
			d.state = Healthy
			d.deployConsecFail = 0
			d.restarts = 0
		}
	}
}

// noteProbeFailureLocked applies a failed probe.
func (d *device) noteProbeFailureLocked(err error, pol HealthPolicy) {
	d.consecOK = 0
	d.probeConsecFail++
	d.lastErr = err.Error()
	switch d.state {
	case Recovering:
		// Failed probation: back to quarantine for another sit-out.
		d.enterQuarantineLocked(pol)
	case Healthy, Degraded:
		if d.probeConsecFail >= pol.QuarantineAfter {
			d.enterQuarantineLocked(pol)
			return
		}
		if d.probeConsecFail >= pol.DegradedAfter {
			d.state = Degraded
		}
		// Probe backoff: failing devices are probed less often.
		if back := d.probeConsecFail - 1; back > 0 {
			if back > pol.MaxProbeBackoff {
				back = pol.MaxProbeBackoff
			}
			d.sitOut = back
		}
	}
}

// noteDeploySuccessLocked resets the breaker streak after a committed
// rollout deploy.
func (d *device) noteDeploySuccessLocked() {
	d.deployConsecFail = 0
	if d.state == Degraded && d.probeConsecFail == 0 {
		d.state = Healthy
	}
}

// noteDeployFailureLocked counts a failed or verify-rolled-back rollout
// deploy toward the breaker.
func (d *device) noteDeployFailureLocked(err error, pol HealthPolicy) {
	d.consecOK = 0
	d.deployConsecFail++
	d.lastErr = err.Error()
	switch d.state {
	case Recovering:
		d.enterQuarantineLocked(pol)
	case Healthy, Degraded:
		if d.deployConsecFail >= pol.BreakerThreshold {
			d.enterQuarantineLocked(pol)
			return
		}
		d.state = Degraded
	}
}

func (d *device) enterQuarantineLocked(pol HealthPolicy) {
	d.state = Quarantined
	d.quarantines++
	d.sitOut = pol.QuarantineProbes
	d.probeConsecFail = 0
	d.consecOK = 0
}

// probe runs one health probe with a deadline, recovering panics. The
// probe goroutine may outlive the deadline (a truly hung backend call
// cannot be cancelled), but the buffered channel lets it finish and be
// collected whenever the backend returns.
func (d *device) probe(timeout time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				errc <- fmt.Errorf("%w: %v", errProbePanic, r)
			}
		}()
		_, err := d.tgt.Profile(false)
		errc <- err
	}()
	select {
	case err := <-errc:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("fleet: %s: probe timed out after %s", d.name, timeout)
	}
}

// safeCall runs fn, converting a panic into an error — panic isolation
// for rollout-path device operations, so one buggy backend cannot take
// the controller down with it.
func safeCall(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errProbePanic, r)
		}
	}()
	return fn()
}
