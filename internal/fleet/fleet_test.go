package fleet_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pipeleon/internal/costmodel"
	"pipeleon/internal/faultinject"
	"pipeleon/internal/fleet"
	"pipeleon/internal/nicsim"
	"pipeleon/internal/opt"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/packet"
	"pipeleon/internal/profile"
	"pipeleon/internal/target"
	"pipeleon/internal/trafficgen"
)

// aclProgram mirrors the core test rig: two plain tables then two
// independent ACLs, with acl2's drop rule hot under the test traffic.
func aclProgram(t *testing.T) *p4ir.Program {
	t.Helper()
	return aclProgramOrder(t, "aclprog", []string{"t1", "t2", "acl1", "acl2"})
}

// altProgram is the same pipeline with the hot ACL hoisted to the front —
// the shape the optimizer would produce, used as the rollout target.
func altProgram(t *testing.T) *p4ir.Program {
	t.Helper()
	return aclProgramOrder(t, "aclprog.next", []string{"acl2", "acl1", "t1", "t2"})
}

func aclProgramOrder(t *testing.T, name string, order []string) *p4ir.Program {
	t.Helper()
	mk := func(name, field string) p4ir.TableSpec {
		return p4ir.TableSpec{
			Name:          name,
			Keys:          []p4ir.Key{{Field: field, Kind: p4ir.MatchExact, Width: packet.FieldWidth(field)}},
			Actions:       []*p4ir.Action{p4ir.NewAction("set", p4ir.Prim("modify_field", "meta."+name, "1")), p4ir.NoopAction("pass")},
			DefaultAction: "pass",
		}
	}
	acl := func(name, field string, dropVal uint64) p4ir.TableSpec {
		return p4ir.TableSpec{
			Name:          name,
			Keys:          []p4ir.Key{{Field: field, Kind: p4ir.MatchExact, Width: packet.FieldWidth(field)}},
			Actions:       []*p4ir.Action{p4ir.DropAction(), p4ir.NoopAction("allow")},
			DefaultAction: "allow",
			Entries: []p4ir.Entry{
				{Match: []p4ir.MatchValue{{Value: dropVal}}, Action: "drop_packet"},
			},
		}
	}
	specs := map[string]p4ir.TableSpec{
		"t1":   mk("t1", "ipv4.dstAddr"),
		"t2":   mk("t2", "ipv4.srcAddr"),
		"acl1": acl("acl1", "tcp.sport", 1111),
		"acl2": acl("acl2", "tcp.dport", 23),
	}
	ordered := make([]p4ir.TableSpec, 0, len(order))
	for _, n := range order {
		ordered = append(ordered, specs[n])
	}
	prog, err := p4ir.ChainTables(name, ordered)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// newMember builds one simulated fleet member: a nicsim-backed Local
// target wrapped in a FaultTarget with its own script.
func newMember(t *testing.T, name string, prog *p4ir.Program) fleet.FleetMember {
	t.Helper()
	m, _ := newMemberNIC(t, name, prog)
	return m
}

func newMemberNIC(t *testing.T, name string, prog *p4ir.Program) (fleet.FleetMember, *nicsim.NIC) {
	t.Helper()
	col := profile.NewCollector()
	nic, err := nicsim.New(prog.Clone(), nicsim.Config{
		Params:     costmodel.BlueField2(),
		Collector:  col,
		Instrument: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	script := faultinject.NewScript()
	return fleet.FleetMember{
		Name:   name,
		Target: fleet.WithFaults(target.NewLocal(nic, col), script),
		Script: script,
	}, nic
}

// dropTraffic returns a generator whose flows concentrate 80% of packets
// on acl2's drop rule.
func dropTraffic() *trafficgen.Generator {
	gen := trafficgen.New(1, 0)
	gen.AddFlows(trafficgen.DropTargetedFlows(2, 2000, "tcp.dport", 23, 0.8)...)
	return gen
}

// lockedSampler serializes a generator for use as a rollout verification
// sampler (stage deploys measure concurrently).
func lockedSampler(gen *trafficgen.Generator) func(n int) []*packet.Packet {
	var mu sync.Mutex
	return func(n int) []*packet.Packet {
		mu.Lock()
		defer mu.Unlock()
		return gen.Batch(n)
	}
}

// TestFleetFaultScenario runs the full scripted 8-device acceptance
// scenario — canary gate, mid-wave halt+rollback, breaker quarantine with
// graceful degradation, probation re-admission — against in-process
// emulator devices. The same scenario backs `make fleet-sim`.
func TestFleetFaultScenario(t *testing.T) {
	progA := aclProgram(t)
	progB := altProgram(t)
	members := make([]fleet.FleetMember, 0, 8)
	for i := 0; i < 8; i++ {
		members = append(members, newMember(t, fmt.Sprintf("nic%d", i), progA))
	}
	err := fleet.RunFaultScenario(fleet.FaultScenarioInput{
		Devices: members,
		Next:    progB,
		Sampler: lockedSampler(dropTraffic()),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStateMachineProbationRelapse walks one device through the failure
// lifecycle, including a relapse during probation.
func TestStateMachineProbationRelapse(t *testing.T) {
	pol := fleet.DefaultHealthPolicy()
	pol.DegradedAfter = 1
	pol.QuarantineAfter = 2
	pol.QuarantineProbes = 1
	pol.ProbationProbes = 2
	pol.MaxProbeBackoff = 0
	ctl := fleet.New(fleet.Options{Policy: pol})
	m := newMember(t, "nic0", aclProgram(t))
	if err := ctl.Add(m.Name, m.Target); err != nil {
		t.Fatal(err)
	}
	state := func() fleet.State {
		st, err := ctl.DeviceState("nic0")
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Two probe failures: Healthy → Degraded → Quarantined.
	m.Script.QueueN(faultinject.PointProbe, 2, faultinject.Decision{Fail: true})
	ctl.ProbeAll()
	if got := state(); got != fleet.Degraded {
		t.Fatalf("after 1 failure: %s, want degraded", got)
	}
	ctl.ProbeAll()
	if got := state(); got != fleet.Quarantined {
		t.Fatalf("after 2 failures: %s, want quarantined", got)
	}

	// Sit-out round, then probation begins — and a failure during
	// probation re-quarantines.
	ctl.ProbeAll() // serves the sit-out, no probe issued
	m.Script.Queue(faultinject.PointProbe, faultinject.Decision{Fail: true})
	ctl.ProbeAll() // Quarantined → Recovering, probation probe fails
	if got := state(); got != fleet.Quarantined {
		t.Fatalf("relapse during probation: %s, want quarantined", got)
	}

	// Clean probation: sit-out, then two successes re-admit.
	ctl.ProbeAll()
	ctl.ProbeAll()
	if got := state(); got != fleet.Recovering {
		t.Fatalf("first clean probation probe: %s, want recovering", got)
	}
	ctl.ProbeAll()
	if got := state(); got != fleet.Healthy {
		t.Fatalf("after probation: %s, want healthy", got)
	}
	st := ctl.Status()
	if st.Devices[0].Quarantines != 2 {
		t.Errorf("quarantines = %d, want 2", st.Devices[0].Quarantines)
	}
}

// panicTarget is a Target whose probes panic while broken — the
// supervised loop must isolate the panic and charge the restart budget.
type panicTarget struct {
	target.Target
	mu     sync.Mutex
	broken bool
}

func (p *panicTarget) setBroken(b bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.broken = b
}

func (p *panicTarget) Profile(reset bool) (*profile.Profile, error) {
	p.mu.Lock()
	broken := p.broken
	p.mu.Unlock()
	if broken {
		panic("backend corrupted")
	}
	return p.Target.Profile(reset)
}

// TestRestartBudgetQuarantinesPanickingDevice checks panic isolation: a
// panicking backend never crashes the controller, is restarted up to the
// budget, then permanently quarantined until an operator Recover.
func TestRestartBudgetQuarantinesPanickingDevice(t *testing.T) {
	pol := fleet.DefaultHealthPolicy()
	pol.RestartBudget = 2
	pol.QuarantineAfter = 10 // only the restart budget should quarantine
	pol.MaxProbeBackoff = 0
	pol.ProbationProbes = 1
	pol.QuarantineProbes = 1
	ctl := fleet.New(fleet.Options{Policy: pol})

	m := newMember(t, "nic0", aclProgram(t))
	pt := &panicTarget{Target: m.Target, broken: true}
	if err := ctl.Add("nic0", pt); err != nil {
		t.Fatal(err)
	}

	// Budget of 2: panics 1-2 are absorbed, the 3rd quarantines for good.
	for i := 0; i < 3; i++ {
		ctl.ProbeAll()
	}
	st := ctl.Status()
	d := st.Devices[0]
	if d.State != "quarantined" || !d.Permanent {
		t.Fatalf("device = %+v, want permanent quarantine", d)
	}
	if d.Restarts != 3 {
		t.Errorf("restarts = %d, want 3", d.Restarts)
	}
	if !strings.Contains(d.LastError, "restart budget") {
		t.Errorf("last error %q does not mention the budget", d.LastError)
	}

	// Probes no longer reach a permanently quarantined device.
	probes := d.Probes
	ctl.ProbeAll()
	if got := ctl.Status().Devices[0].Probes; got != probes {
		t.Errorf("permanently quarantined device was probed (%d -> %d)", probes, got)
	}

	// Operator recovery after fixing the backend re-admits it.
	pt.setBroken(false)
	if err := ctl.Recover("nic0"); err != nil {
		t.Fatal(err)
	}
	ctl.ProbeAll()
	if got := ctl.Status().Devices[0].State; got != "healthy" {
		t.Errorf("after recover+probe: %s, want healthy", got)
	}
}

// TestOperatorQuarantineExcludesDevice pins the p4cctl fleet quarantine
// path: a forced quarantine keeps the device out of rollouts.
func TestOperatorQuarantineExcludesDevice(t *testing.T) {
	progA := aclProgram(t)
	ctl := fleet.New(fleet.Options{})
	for i := 0; i < 3; i++ {
		m := newMember(t, fmt.Sprintf("nic%d", i), progA)
		if err := ctl.Add(m.Name, m.Target); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctl.Quarantine("nic1"); err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Rollout(altProgram(t), fleet.DefaultRolloutConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Committed) != 2 || len(rep.Skipped) != 1 || rep.Skipped[0] != "nic1" {
		t.Fatalf("committed=%v skipped=%v, want nic1 skipped", rep.Committed, rep.Skipped)
	}
	if err := ctl.Quarantine("nope"); err == nil {
		t.Error("quarantining an unknown device succeeded")
	}
}

// TestOptimizeAndRolloutSharesPlans runs a fleet optimization round over
// three same-model devices: the canary's search result is cached and the
// optimized program (hot ACL promoted) rolls out to the whole group.
func TestOptimizeAndRolloutSharesPlans(t *testing.T) {
	progA := aclProgram(t)
	cfg := opt.DefaultConfig()
	cfg.TopKFrac = 1
	cfg.EnableCache = false
	cfg.EnableMerge = false
	ctl := fleet.New(fleet.Options{Optimizer: cfg, Logf: t.Logf})

	gen := dropTraffic()
	var members []fleet.FleetMember
	for i := 0; i < 3; i++ {
		m, nic := newMemberNIC(t, fmt.Sprintf("nic%d", i), progA)
		nic.Measure(gen.Batch(4000)) // build up each device's profile
		members = append(members, m)
		if err := ctl.Add(m.Name, m.Target); err != nil {
			t.Fatal(err)
		}
	}

	rcfg := fleet.DefaultRolloutConfig(lockedSampler(gen))
	rcfg.Verify.MaxRegression = 1.0
	reports, err := ctl.OptimizeAndRollout(progA, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1 model group", len(reports))
	}
	if n := len(reports[0].Committed); n != 3 {
		t.Fatalf("committed = %d devices, want 3: %+v", n, reports[0])
	}
	for _, m := range members {
		if root := m.Target.Program().Root; root != "acl2" {
			t.Errorf("%s root = %q, want acl2 promoted", m.Name, root)
		}
	}
	cs := ctl.Status().PlanCache
	if cs.Entries != 1 || cs.Misses != 1 {
		t.Errorf("plan cache = %+v, want one searched entry", cs)
	}
}

// TestRunSupervisedLoops smoke-tests the background probe loops: every
// device is probed on its own goroutine and the loops drain on stop.
func TestRunSupervisedLoops(t *testing.T) {
	ctl := fleet.New(fleet.Options{})
	progA := aclProgram(t)
	for i := 0; i < 4; i++ {
		m := newMember(t, fmt.Sprintf("nic%d", i), progA)
		if err := ctl.Add(m.Name, m.Target); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		ctl.Run(2*time.Millisecond, stop)
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for {
		st := ctl.Status()
		probed := 0
		for _, d := range st.Devices {
			if d.Probes > 0 {
				probed++
			}
		}
		if probed == 4 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("devices not all probed in time: %+v", st.Devices)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
	if st := ctl.Status(); st.Healthy != 4 {
		t.Errorf("healthy = %d, want 4", st.Healthy)
	}
}
