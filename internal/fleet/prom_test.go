package fleet

import (
	"fmt"
	"strings"
	"testing"

	"pipeleon/internal/costmodel"
	"pipeleon/internal/nicsim"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/packet"
	"pipeleon/internal/target"
)

func TestWriteMetricsRendersStatus(t *testing.T) {
	st := Status{
		Devices: []DeviceStatus{
			{Name: "sim1", State: Quarantined.String(), Probes: 9, ProbeFails: 4, Quarantines: 1},
			{Name: "sim0", State: Healthy.String(), Probes: 10, Deploys: 3, Commits: 2, RolledBack: 1},
		},
		Healthy: 1, Quarantined: 1, Serving: 1,
		Rollouts: 5, HaltedRollouts: 1, FleetRollbacks: 2,
		PlanCache: PlanCacheStats{Entries: 2, Hits: 7, Misses: 3},
		OptSearch: SearchSessionStats{Sessions: 2, Rounds: 4, UnitHits: 11, TotalSearchNs: 2.5e9},
	}
	var sb strings.Builder
	if err := WriteMetrics(&sb, st); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP pipeleon_fleet_devices ",
		"# TYPE pipeleon_fleet_devices gauge",
		"pipeleon_fleet_devices 2\n",
		`pipeleon_fleet_devices_by_state{state="healthy"} 1`,
		`pipeleon_fleet_devices_by_state{state="quarantined"} 1`,
		"pipeleon_fleet_serving 1\n",
		"# TYPE pipeleon_fleet_rollouts_total counter",
		"pipeleon_fleet_rollouts_total 5",
		"pipeleon_fleet_rollouts_halted_total 1",
		"pipeleon_fleet_rollbacks_total 2",
		"pipeleon_plancache_entries 2",
		"pipeleon_plancache_hits_total 7",
		"pipeleon_optsearch_rounds_total 4",
		"pipeleon_optsearch_unit_memo_hits_total 11",
		"pipeleon_optsearch_search_seconds_total 2.5",
		`pipeleon_device_probes_total{device="sim0"} 10`,
		`pipeleon_device_probes_total{device="sim1"} 9`,
		`pipeleon_device_probe_failures_total{device="sim1"} 4`,
		`pipeleon_device_rollbacks_total{device="sim0"} 1`,
		`pipeleon_device_up{device="sim0"} 1`,
		`pipeleon_device_up{device="sim1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Devices render sorted by name regardless of snapshot order.
	if i, j := strings.Index(out, `device="sim0"`), strings.Index(out, `device="sim1"`); i < 0 || j < 0 || i > j {
		t.Errorf("per-device series not sorted (sim0 at %d, sim1 at %d)", i, j)
	}

	// Every non-comment line is `name value` or `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestWriteMetricsEscapesLabels(t *testing.T) {
	st := Status{Devices: []DeviceStatus{{Name: `rack"7\a`, State: Healthy.String()}}}
	var sb strings.Builder
	if err := WriteMetrics(&sb, st); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if !strings.Contains(sb.String(), `device="rack\"7\\a"`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}

// The live path: a controller snapshot must render without error and carry
// the registered devices.
func TestWriteMetricsFromController(t *testing.T) {
	prog, err := p4ir.ChainTables("m", []p4ir.TableSpec{{
		Name:          "t1",
		Keys:          []p4ir.Key{{Field: "ipv4.dstAddr", Kind: p4ir.MatchExact, Width: packet.FieldWidth("ipv4.dstAddr")}},
		Actions:       []*p4ir.Action{p4ir.NoopAction("pass")},
		DefaultAction: "pass",
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctl := New(Options{})
	for i := 0; i < 3; i++ {
		nic, err := nicsim.New(prog.Clone(), nicsim.Config{Params: costmodel.EmulatedNIC()})
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.Add(fmt.Sprintf("sim%d", i), target.NewLocal(nic, nil)); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := WriteMetrics(&sb, ctl.Status()); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	for _, want := range []string{
		"pipeleon_fleet_devices 3",
		`pipeleon_device_up{device="sim2"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("controller metrics missing %q", want)
		}
	}
}
