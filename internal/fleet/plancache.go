package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"pipeleon/internal/p4ir"
	"pipeleon/internal/profile"
)

// PlanEntry is one cached optimization result: the program produced by a
// plan search, keyed by what made the search reusable — the base program,
// the device model (cost model), and a quantized profile signature.
type PlanEntry struct {
	Fingerprint string   `json:"fingerprint"`
	Model       string   `json:"model"`
	Signature   string   `json:"signature"`
	Plan        []string `json:"plan"`
	Gain        float64  `json:"gain_ns"`
	// Source records how the entry was produced ("search"); Get flips the
	// returned copy to "cache" so callers can report reuse.
	Source string `json:"source"`
	// Program is the optimized program. Get hands out clones — cached
	// entries must never alias a deployed program.
	Program *p4ir.Program `json:"-"`
}

// PlanCacheStats is the cache's machine-readable counter snapshot.
type PlanCacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// PlanCache is the fleet's shared plan cache. One canary's optimization
// search (seconds of knapsack work under the cost model) is reused for
// every device with the same base program, the same model, and a similar
// enough traffic profile — the similarity relation is equality of the
// quantized ProfileSignature. Eviction is FIFO; safe for concurrent use.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*PlanEntry
	order   []string
	hits    uint64
	misses  uint64
}

// NewPlanCache returns a cache holding at most max entries (<=0 → 128).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = 128
	}
	return &PlanCache{max: max, entries: map[string]*PlanEntry{}}
}

func cacheKey(fp, model, sig string) string {
	return fp + "|" + model + "|" + sig
}

// Get returns a copy of the cached entry for the key triple, with a
// cloned Program, or ok=false on a miss.
func (pc *PlanCache) Get(fp, model, sig string) (*PlanEntry, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[cacheKey(fp, model, sig)]
	if !ok {
		pc.misses++
		return nil, false
	}
	pc.hits++
	cp := *e
	cp.Source = "cache"
	if e.Program != nil {
		cp.Program = e.Program.Clone()
	}
	cp.Plan = append([]string(nil), e.Plan...)
	return &cp, true
}

// Put stores the entry (cloning its Program), evicting the oldest entry
// when full.
func (pc *PlanCache) Put(e *PlanEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	key := cacheKey(e.Fingerprint, e.Model, e.Signature)
	cp := *e
	if e.Program != nil {
		cp.Program = e.Program.Clone()
	}
	cp.Plan = append([]string(nil), e.Plan...)
	if _, exists := pc.entries[key]; !exists {
		pc.order = append(pc.order, key)
		for len(pc.order) > pc.max {
			oldest := pc.order[0]
			pc.order = pc.order[1:]
			delete(pc.entries, oldest)
		}
	}
	pc.entries[key] = &cp
}

// Stats returns the cache counters.
func (pc *PlanCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{Entries: len(pc.entries), Hits: pc.hits, Misses: pc.misses}
}

// Fingerprint returns a stable short hash of a program's canonical JSON
// form — the identity rollouts and the plan cache key on. p4ir's
// MarshalJSON is deterministic (sorted nodes), so equal programs hash
// equal across processes.
func Fingerprint(p *p4ir.Program) string {
	if p == nil {
		return ""
	}
	data, err := json.Marshal(p)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// ProfileSignature quantizes a runtime profile into a similarity key for
// the plan cache. It is profile.Signature — the one shared quantization
// used by the plan cache, the optimizer's warm sessions, and the core
// runtime's change detection — re-exported under the fleet's historical
// name.
func ProfileSignature(prog *p4ir.Program, prof *profile.Profile) string {
	return profile.Signature(prog, prof)
}
