package fleet

import (
	"sync"

	"pipeleon/internal/costmodel"
	"pipeleon/internal/opt"
	"pipeleon/internal/p4ir"
)

// maxWarmSessions bounds the controller's warm-session pool. Each session
// pins a program's partition, dependency analysis, and candidate memos in
// memory, so the pool holds only the most recently introduced
// (fingerprint, model) pairs — a fleet typically runs a handful of
// programs at a time, and an evicted pair merely pays one cold search.
const maxWarmSessions = 8

// sessionPool caches warm optimizer sessions keyed by (program
// fingerprint, device model). The plan cache already short-circuits
// repeated searches whose quantized profile signature matches exactly; the
// session pool accelerates the remaining case — a signature that did move,
// for a program/model pair searched before — by reusing the session's
// program-derived state and per-unit memos. FIFO eviction, like PlanCache.
type sessionPool struct {
	mu     sync.Mutex
	order  []string
	byKey  map[string]*opt.Session
	hits   uint64
	misses uint64
}

func newSessionPool() *sessionPool {
	return &sessionPool{byKey: map[string]*opt.Session{}}
}

// get returns the warm session for (fp, model), building one from prog
// when absent. Concurrent callers racing on the same key converge on the
// first session inserted.
func (sp *sessionPool) get(fp, model string, prog *p4ir.Program, pm costmodel.Params, cfg opt.Config) (*opt.Session, error) {
	key := fp + "|" + model
	sp.mu.Lock()
	if s, ok := sp.byKey[key]; ok {
		sp.hits++
		sp.mu.Unlock()
		return s, nil
	}
	sp.misses++
	sp.mu.Unlock()

	s, err := opt.NewSession(prog, pm, cfg)
	if err != nil {
		return nil, err
	}

	sp.mu.Lock()
	defer sp.mu.Unlock()
	if cur, ok := sp.byKey[key]; ok {
		return cur, nil // lost the build race; keep the incumbent's memos
	}
	sp.byKey[key] = s
	sp.order = append(sp.order, key)
	if len(sp.order) > maxWarmSessions {
		oldest := sp.order[0]
		sp.order = sp.order[1:]
		delete(sp.byKey, oldest)
	}
	return s, nil
}

// SearchSessionStats aggregates the controller's warm-session pool for
// Status: pool effectiveness plus the summed per-session counters
// (opt.SessionStats).
type SearchSessionStats struct {
	// Sessions is the number of live warm sessions.
	Sessions int `json:"sessions"`
	// PoolHits / PoolMisses count session-pool lookups.
	PoolHits   uint64 `json:"pool_hits"`
	PoolMisses uint64 `json:"pool_misses"`
	// Rounds is the total searches served across live sessions.
	Rounds int `json:"rounds"`
	// UnitHits / UnitMisses count per-unit candidate-memo outcomes.
	UnitHits   uint64 `json:"unit_hits"`
	UnitMisses uint64 `json:"unit_misses"`
	// VerifyHits / VerifyMisses count rewrite-verdict-memo outcomes.
	VerifyHits   uint64 `json:"verify_hits"`
	VerifyMisses uint64 `json:"verify_misses"`
	// TotalSearchNs is the cumulative wall-clock search time in
	// nanoseconds across live sessions.
	TotalSearchNs int64 `json:"total_search_ns"`
}

func (sp *sessionPool) stats() SearchSessionStats {
	sp.mu.Lock()
	sessions := make([]*opt.Session, 0, len(sp.byKey))
	for _, s := range sp.byKey {
		sessions = append(sessions, s)
	}
	st := SearchSessionStats{
		Sessions:   len(sp.byKey),
		PoolHits:   sp.hits,
		PoolMisses: sp.misses,
	}
	sp.mu.Unlock()
	for _, s := range sessions {
		ss := s.Stats()
		st.Rounds += ss.Rounds
		st.UnitHits += ss.UnitHits
		st.UnitMisses += ss.UnitMisses
		st.VerifyHits += ss.VerifyHits
		st.VerifyMisses += ss.VerifyMisses
		st.TotalSearchNs += ss.TotalSearch.Nanoseconds()
	}
	return st
}
