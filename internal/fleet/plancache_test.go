package fleet_test

import (
	"testing"

	"pipeleon/internal/fleet"
	"pipeleon/internal/profile"
)

// TestProfileSignatureQuantization pins the similarity relation behind
// plan sharing: profiles whose table shares differ by a few percent hash
// to the same signature (plan reuse), while a real traffic shift — the
// hot table going cold — changes it (fresh search).
func TestProfileSignatureQuantization(t *testing.T) {
	prog := aclProgram(t)
	mkProf := func(t1, t2, acl1, acl2 uint64) *profile.Profile {
		p := profile.New()
		p.ActionCounts["t1"] = map[string]uint64{"set": t1}
		p.ActionCounts["t2"] = map[string]uint64{"set": t2}
		p.ActionCounts["acl1"] = map[string]uint64{"allow": acl1}
		p.ActionCounts["acl2"] = map[string]uint64{"drop_packet": acl2}
		return p
	}

	base := fleet.ProfileSignature(prog, mkProf(1000, 1000, 1000, 800))
	similar := fleet.ProfileSignature(prog, mkProf(1020, 990, 1010, 812))
	if base != similar {
		t.Errorf("near-identical profiles got different signatures: %s vs %s", base, similar)
	}
	shifted := fleet.ProfileSignature(prog, mkProf(1000, 1000, 1000, 10))
	if base == shifted {
		t.Error("hot table going cold did not change the signature")
	}

	// An entry-update storm on a table also forces a re-plan (caching a
	// hot-updated table is the §4 trap the update-rate term guards).
	storm := mkProf(1000, 1000, 1000, 800)
	storm.UpdateRates["acl2"] = 5000
	if got := fleet.ProfileSignature(prog, storm); got == base {
		t.Error("update-rate storm did not change the signature")
	}
}

// TestPlanCacheGetPutEvict covers hit/miss accounting, FIFO eviction, and
// that cached programs never alias what callers deploy.
func TestPlanCacheGetPutEvict(t *testing.T) {
	pc := fleet.NewPlanCache(2)
	prog := aclProgram(t)
	put := func(fp string) {
		pc.Put(&fleet.PlanEntry{
			Fingerprint: fp, Model: "bf2", Signature: "s",
			Plan: []string{"reorder"}, Program: prog, Source: "search",
		})
	}
	if _, ok := pc.Get("a", "bf2", "s"); ok {
		t.Fatal("empty cache returned a hit")
	}
	put("a")
	e, ok := pc.Get("a", "bf2", "s")
	if !ok || e.Source != "cache" {
		t.Fatalf("entry = %+v ok=%v, want a cache hit", e, ok)
	}
	if e.Program == prog {
		t.Error("Get returned the stored program by reference")
	}
	// Mutating the returned clone must not poison later hits.
	e.Program.Name = "mutated"
	if e2, _ := pc.Get("a", "bf2", "s"); e2.Program.Name == "mutated" {
		t.Error("mutation of a returned program leaked into the cache")
	}

	put("b")
	put("c") // evicts "a" (FIFO)
	if _, ok := pc.Get("a", "bf2", "s"); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := pc.Get("c", "bf2", "s"); !ok {
		t.Error("newest entry missing")
	}
	st := pc.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 3/2", st.Hits, st.Misses)
	}
}

// TestFingerprintStable pins that fingerprints are order-insensitive to
// clone round-trips but sensitive to program structure.
func TestFingerprintStable(t *testing.T) {
	a := aclProgram(t)
	if fleet.Fingerprint(a) != fleet.Fingerprint(a.Clone()) {
		t.Error("clone changed the fingerprint")
	}
	if fleet.Fingerprint(a) == fleet.Fingerprint(altProgram(t)) {
		t.Error("different programs share a fingerprint")
	}
	if fleet.Fingerprint(nil) != "" {
		t.Error("nil program should fingerprint to empty")
	}
}
