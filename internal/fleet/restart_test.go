package fleet_test

import (
	"testing"
	"time"

	"pipeleon/internal/controlplane"
	"pipeleon/internal/fleet"
	"pipeleon/internal/target/remote"
)

// TestNicdKilledMidCanary is the fault-matrix test for a real device
// server dying under the fleet controller: one fleet member lives behind
// a loopback nicd-style control-plane server. The server is killed before
// a rollout whose canary stage spans both devices — the fleet must halt,
// roll back the device that had already committed, quarantine the dead
// one, and reconverge after the server comes back on the same address
// (the control-plane client re-dials transparently).
func TestNicdKilledMidCanary(t *testing.T) {
	progA := aclProgram(t)
	progB := altProgram(t)
	fpA, fpB := fleet.Fingerprint(progA), fleet.Fingerprint(progB)

	// dev0 is in-process; dev1 sits behind a control-plane server.
	m0 := newMember(t, "dev0", progA)
	m1 := newMember(t, "dev1", progA)
	srv, err := controlplane.NewServer("127.0.0.1:0", nil, nil, controlplane.WithDevice(m1.Target))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cl, err := controlplane.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Tight budgets so a dead server fails fast instead of stalling the
	// canary stage (the satellite fix this PR makes to the client).
	cl.Timeout = 500 * time.Millisecond
	cl.Retry = controlplane.RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		MaxElapsed:  500 * time.Millisecond,
	}
	rdev, err := remote.New(cl)
	if err != nil {
		t.Fatal(err)
	}
	defer rdev.Close()

	pol := fleet.DefaultHealthPolicy()
	pol.ProbeTimeout = 5 * time.Second
	pol.DegradedAfter = 1
	pol.QuarantineAfter = 2
	pol.QuarantineProbes = 1
	pol.ProbationProbes = 2
	pol.MaxProbeBackoff = 0
	ctl := fleet.New(fleet.Options{Policy: pol, Logf: t.Logf})
	if err := ctl.Add("dev0", m0.Target); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Add("dev1", rdev); err != nil {
		t.Fatal(err)
	}
	// Canary = 2: the canary stage spans both devices, so the kill lands
	// mid-canary while dev0 commits.
	cfg := fleet.DefaultRolloutConfig(lockedSampler(dropTraffic()))
	cfg.Canary = 2
	cfg.Verify.MaxRegression = 1.0
	// Reverting to the slower progA is a deliberate regression, so the
	// back-out rollouts run unverified.
	cfgBack := cfg
	cfgBack.Verify = fleet.VerifyConfig{}

	// Healthy fleet converges on progB over the wire.
	rep, err := ctl.Rollout(progB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Halted || len(rep.Committed) != 2 {
		t.Fatalf("healthy rollout: halted=%v committed=%v", rep.Halted, rep.Committed)
	}
	if got := fleet.Fingerprint(rdev.Program()); got != fpB {
		t.Fatalf("remote device runs %q, want %q", got, fpB)
	}

	// Kill the device server mid-fleet.
	srv.Close()

	rep, err = ctl.Rollout(progA, cfgBack)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Halted || !rep.RolledBack {
		t.Fatalf("rollout with dead nicd: halted=%v rolledback=%v (%s)",
			rep.Halted, rep.RolledBack, rep.HaltReason)
	}
	if len(rep.Committed) != 0 {
		t.Fatalf("committed=%v after halt, want none", rep.Committed)
	}
	// dev0 had committed progA and must be back on progB.
	if got := fleet.Fingerprint(m0.Target.Program()); got != fpB {
		t.Fatalf("dev0 runs %q after fleet rollback, want %q", got, fpB)
	}

	// Probe failures quarantine the dead device; the fleet keeps serving.
	ctl.ProbeAll()
	ctl.ProbeAll()
	if st, _ := ctl.DeviceState("dev1"); st != fleet.Quarantined {
		t.Fatalf("dev1 = %s after dead probes, want quarantined", st)
	}
	if st := ctl.Status(); st.Serving != 1 {
		t.Fatalf("serving = %d with one dead device, want 1", st.Serving)
	}

	// "Restart nicd": a fresh server on the same address over the same
	// device. The remote target's client re-dials on its next call.
	srv2, err := controlplane.NewServer(addr, nil, nil, controlplane.WithDevice(m1.Target))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	ctl.ProbeAll() // sit-out
	ctl.ProbeAll() // probation 1
	ctl.ProbeAll() // probation 2 → healthy
	if st, _ := ctl.DeviceState("dev1"); st != fleet.Healthy {
		t.Fatalf("dev1 = %s after recovery, want healthy", st)
	}

	// The fleet reconverges, remote device included.
	rep, err = ctl.Rollout(progA, cfgBack)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Halted || len(rep.Committed) != 2 {
		t.Fatalf("reconvergence: halted=%v committed=%v (%s)", rep.Halted, rep.Committed, rep.HaltReason)
	}
	if got := fleet.Fingerprint(m0.Target.Program()); got != fpA {
		t.Errorf("dev0 runs %q, want %q", got, fpA)
	}
	if got := fleet.Fingerprint(rdev.Program()); got != fpA {
		t.Errorf("dev1 runs %q, want %q", got, fpA)
	}
	st := ctl.Status()
	if st.Healthy != 2 || st.HaltedRollouts != 1 || st.FleetRollbacks != 1 {
		t.Errorf("final status: healthy=%d halted=%d rollbacks=%d, want 2/1/1",
			st.Healthy, st.HaltedRollouts, st.FleetRollbacks)
	}
}
