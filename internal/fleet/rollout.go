package fleet

import (
	"errors"
	"fmt"
	"sync"

	"pipeleon/internal/p4ir"
	"pipeleon/internal/packet"
	"pipeleon/internal/profile"
	"pipeleon/internal/target"
)

// VerifyConfig is the per-device measured-regression check a rollout runs
// around every deploy, mirroring the single-device runtime's deploy guard:
// measure before, deploy, measure after on the same sample, and roll the
// device back if latency regressed past the allowance.
type VerifyConfig struct {
	// Sampler produces the verification batch (nil disables verification).
	Sampler func(n int) []*packet.Packet
	// Packets per verification measurement (default 256).
	Packets int
	// MaxRegression is the tolerated relative mean-latency increase
	// (default 0.2 — looser than the runtime's guard because a fresh
	// deploy measures with cold caches).
	MaxRegression float64
}

func (v VerifyConfig) packets() int {
	if v.Packets > 0 {
		return v.Packets
	}
	return 256
}

func (v VerifyConfig) maxRegression() float64 {
	if v.MaxRegression > 0 {
		return v.MaxRegression
	}
	return 0.2
}

// RolloutConfig shapes a staged rollout.
type RolloutConfig struct {
	// Canary is the size of the first stage (default 1). Any canary
	// failure halts the rollout before fan-out.
	Canary int
	// FirstWave is the size of the first post-canary wave (default 2).
	FirstWave int
	// WaveGrowth multiplies each subsequent wave (default 2).
	WaveGrowth int
	// MaxFailureFrac halts the rollout when cumulative
	// failures/attempted exceeds it after any stage (default 0.25).
	MaxFailureFrac float64
	// Verify configures the per-device regression check.
	Verify VerifyConfig
}

// DefaultRolloutConfig returns the production defaults with the given
// verification sampler (nil sampler → deploys are unverified).
func DefaultRolloutConfig(sampler func(n int) []*packet.Packet) RolloutConfig {
	return RolloutConfig{
		Canary:         1,
		FirstWave:      2,
		WaveGrowth:     2,
		MaxFailureFrac: 0.25,
		Verify:         VerifyConfig{Sampler: sampler},
	}
}

func (cfg RolloutConfig) withDefaults() RolloutConfig {
	if cfg.Canary <= 0 {
		cfg.Canary = 1
	}
	if cfg.FirstWave <= 0 {
		cfg.FirstWave = 2
	}
	if cfg.WaveGrowth <= 1 {
		cfg.WaveGrowth = 2
	}
	if cfg.MaxFailureFrac <= 0 {
		cfg.MaxFailureFrac = 0.25
	}
	return cfg
}

// planStages returns the stage sizes for n devices: canary, then waves
// growing geometrically until the fleet is covered.
func planStages(n int, cfg RolloutConfig) []int {
	if n <= 0 {
		return nil
	}
	var stages []int
	canary := cfg.Canary
	if canary > n {
		canary = n
	}
	stages = append(stages, canary)
	left := n - canary
	wave := cfg.FirstWave
	for left > 0 {
		size := wave
		if size > left {
			size = left
		}
		stages = append(stages, size)
		left -= size
		wave *= cfg.WaveGrowth
	}
	return stages
}

// DeviceResult is one device's outcome within a rollout.
type DeviceResult struct {
	Device string `json:"device"`
	// Stage is the 0-based stage index (0 = canary); -1 when the device
	// already ran the target program and was skipped as converged.
	Stage     int  `json:"stage"`
	Committed bool `json:"committed"`
	// Converged marks a device that already ran the target program.
	Converged bool `json:"converged,omitempty"`
	// RolledBack marks a per-device verify rollback.
	RolledBack bool `json:"rolled_back,omitempty"`
	// FleetRolledBack marks a committed device that was reverted by the
	// fleet-wide halt.
	FleetRolledBack bool `json:"fleet_rolled_back,omitempty"`
	// VerifyDelta is the relative mean-latency change measured by the
	// verification window (post vs pre).
	VerifyDelta float64 `json:"verify_delta,omitempty"`
	Err         string  `json:"err,omitempty"`
}

// StageReport summarizes one rollout stage.
type StageReport struct {
	Stage   int      `json:"stage"`
	Canary  bool     `json:"canary"`
	Devices []string `json:"devices"`
	Failed  int      `json:"failed"`
}

// RolloutReport is the outcome of one staged rollout.
type RolloutReport struct {
	// Fingerprint identifies the program that was rolled out.
	Fingerprint string         `json:"fingerprint"`
	Stages      []StageReport  `json:"stages"`
	Results     []DeviceResult `json:"results"`
	// Halted is set when the canary failed or the failure ratio breached
	// MaxFailureFrac; no further stages ran.
	Halted     bool   `json:"halted"`
	HaltReason string `json:"halt_reason,omitempty"`
	// RolledBack is set when the halt reverted already-committed devices.
	RolledBack bool `json:"rolled_back"`
	// RollbackErrors lists devices whose fleet rollback itself failed
	// (they are left degraded for the health loop to deal with).
	RollbackErrors []string `json:"rollback_errors,omitempty"`
	// Committed names the devices left running the new program.
	Committed []string `json:"committed"`
	// Skipped names devices excluded up front (quarantined/recovering).
	Skipped []string `json:"skipped,omitempty"`
	// Attempted/Failed are the cumulative counts behind the ratio check.
	Attempted int `json:"attempted"`
	Failed    int `json:"failed"`
}

// Rollout deploys prog to every eligible device in stages: canary first,
// then exponentially growing waves. Each device deploy is verified with a
// before/after measurement (rolling back just that device on regression);
// any canary failure, or a cumulative failure ratio above
// cfg.MaxFailureFrac, halts the rollout and rolls back every device the
// rollout had already committed. Devices already running prog are counted
// as converged without a deploy, so Rollout is also the fleet's
// convergence primitive after recoveries.
func (c *Controller) Rollout(prog *p4ir.Program, cfg RolloutConfig) (*RolloutReport, error) {
	if prog == nil {
		return nil, errors.New("fleet: rollout needs a program")
	}
	c.rolloutMu.Lock()
	defer c.rolloutMu.Unlock()
	cfg = cfg.withDefaults()

	eligible, skipped := c.eligibleDevices()
	rep := &RolloutReport{Fingerprint: Fingerprint(prog), Skipped: skipped}
	if len(eligible) == 0 {
		return rep, errors.New("fleet: no eligible devices")
	}
	c.mu.Lock()
	c.rollouts++
	c.mu.Unlock()

	// Devices already running the target program need no deploy.
	var pending []*device
	for _, d := range eligible {
		if fingerprintOf(d.tgt) == rep.Fingerprint {
			rep.Results = append(rep.Results, DeviceResult{
				Device: d.name, Stage: -1, Committed: true, Converged: true,
			})
			rep.Committed = append(rep.Committed, d.name)
			continue
		}
		pending = append(pending, d)
	}
	if len(pending) == 0 {
		c.logf("rollout %s: fleet already converged (%d devices)", rep.Fingerprint, len(eligible))
		return rep, nil
	}

	var commits []committedDeploy

	stages := planStages(len(pending), cfg)
	next := 0
	for si, size := range stages {
		stageDevs := pending[next : next+size]
		next += size
		canary := si == 0

		// Deploy the whole stage concurrently; results are collected by
		// index so the report order is deterministic.
		results := make([]DeviceResult, len(stageDevs))
		prevs := make([]*p4ir.Program, len(stageDevs))
		var wg sync.WaitGroup
		for i, d := range stageDevs {
			wg.Add(1)
			go func(i int, d *device) {
				defer wg.Done()
				results[i], prevs[i] = c.deployOne(d, prog, cfg, si)
			}(i, d)
		}
		wg.Wait()

		sr := StageReport{Stage: si, Canary: canary}
		for i, r := range results {
			sr.Devices = append(sr.Devices, r.Device)
			rep.Results = append(rep.Results, r)
			rep.Attempted++
			if r.Committed {
				commits = append(commits, committedDeploy{stageDevs[i], prevs[i]})
			} else {
				rep.Failed++
				sr.Failed++
			}
		}
		rep.Stages = append(rep.Stages, sr)
		c.logf("rollout %s: stage %d (%d devices) done, %d failed",
			rep.Fingerprint, si, len(stageDevs), sr.Failed)

		ratio := float64(rep.Failed) / float64(rep.Attempted)
		switch {
		case canary && sr.Failed > 0:
			rep.Halted = true
			rep.HaltReason = fmt.Sprintf("canary failed (%d/%d)", sr.Failed, len(stageDevs))
		case ratio > cfg.MaxFailureFrac:
			rep.Halted = true
			rep.HaltReason = fmt.Sprintf("failure ratio %.2f exceeds %.2f after stage %d",
				ratio, cfg.MaxFailureFrac, si)
		}
		if rep.Halted {
			c.mu.Lock()
			c.haltedRollouts++
			c.mu.Unlock()
			c.logf("rollout %s: HALT: %s", rep.Fingerprint, rep.HaltReason)
			c.rollbackCommitted(rep, commits)
			return rep, nil
		}
	}

	for _, cm := range commits {
		rep.Committed = append(rep.Committed, cm.d.name)
	}
	return rep, nil
}

// committedDeploy remembers what a committed device ran before the
// rollout, so a fleet-wide halt can revert it.
type committedDeploy struct {
	d    *device
	prev *p4ir.Program
}

// rollbackCommitted reverts every device the halted rollout had already
// committed back to its previous program.
func (c *Controller) rollbackCommitted(rep *RolloutReport, commits []committedDeploy) {
	if len(commits) == 0 {
		return
	}
	rep.RolledBack = true
	c.mu.Lock()
	c.fleetRollbacks++
	c.mu.Unlock()
	var wg sync.WaitGroup
	errs := make([]error, len(commits))
	for i, cm := range commits {
		wg.Add(1)
		go func(i int, d *device, prev *p4ir.Program) {
			defer wg.Done()
			errs[i] = safeCall(func() error {
				if prev == nil {
					return errors.New("no previous program captured")
				}
				if err := d.tgt.Deploy(prev.Clone()); err != nil {
					return err
				}
				return d.tgt.Commit()
			})
		}(i, cm.d, cm.prev)
	}
	wg.Wait()
	for i, cm := range commits {
		d := cm.d
		d.mu.Lock()
		d.rollbacks++
		d.mu.Unlock()
		// Flip the device's committed result in the report.
		for ri := range rep.Results {
			if rep.Results[ri].Device == d.name && rep.Results[ri].Committed {
				rep.Results[ri].Committed = false
				rep.Results[ri].FleetRolledBack = true
			}
		}
		if err := errs[i]; err != nil {
			rep.RollbackErrors = append(rep.RollbackErrors,
				fmt.Sprintf("%s: %v", d.name, err))
			d.mu.Lock()
			d.noteDeployFailureLocked(fmt.Errorf("fleet rollback failed: %w", err), c.policy)
			d.mu.Unlock()
		}
	}
	rep.Committed = nil
	c.logf("rollout %s: rolled back %d committed devices", rep.Fingerprint, len(commits))
}

// deployOne runs the deploy → verify → commit-or-rollback transaction for
// one device and applies the outcome to its health state machine. prev is
// the program the device ran before the deploy (for fleet rollback).
func (c *Controller) deployOne(d *device, prog *p4ir.Program, cfg RolloutConfig, stage int) (DeviceResult, *p4ir.Program) {
	res := DeviceResult{Device: d.name, Stage: stage}
	var prev *p4ir.Program
	err := safeCall(func() error {
		prev = d.tgt.Program()

		// Pre-deploy measurement on the verification sample. A failed
		// pre-measure disables verification (matching the single-device
		// guard: never block a deploy on a broken measurement path), but a
		// failed post-measure contradicts the deploy — the device just
		// changed programs and went mute.
		var sample []*packet.Packet
		var pre target.Measurement
		verifying := cfg.Verify.Sampler != nil
		if verifying {
			sample = cfg.Verify.Sampler(cfg.Verify.packets())
			verifying = len(sample) > 0
		}
		if verifying {
			var merr error
			pre, merr = d.tgt.Measure(sample)
			if merr != nil || pre.MeanLatencyNs <= 0 {
				verifying = false
			}
		}

		if err := d.tgt.Deploy(prog.Clone()); err != nil {
			return fmt.Errorf("deploy: %w", err)
		}
		d.mu.Lock()
		d.deploys++
		d.mu.Unlock()

		if verifying {
			post, merr := d.tgt.Measure(sample)
			bad := false
			if merr != nil {
				bad = true
				res.Err = fmt.Sprintf("verify measurement failed: %v", merr)
			} else {
				res.VerifyDelta = (post.MeanLatencyNs - pre.MeanLatencyNs) / pre.MeanLatencyNs
				bad = res.VerifyDelta > cfg.Verify.maxRegression()
			}
			if bad {
				if rerr := d.tgt.Rollback(); rerr != nil {
					return fmt.Errorf("verify failed and rollback failed too: %v", rerr)
				}
				res.RolledBack = true
				d.mu.Lock()
				d.rollbacks++
				d.mu.Unlock()
				if res.Err != "" {
					return errors.New(res.Err)
				}
				return fmt.Errorf("verify: mean latency regressed %+.0f%% (max %+.0f%%)",
					res.VerifyDelta*100, cfg.Verify.maxRegression()*100)
			}
		}

		if err := d.tgt.Commit(); err != nil {
			return fmt.Errorf("commit: %w", err)
		}
		res.Committed = true
		return nil
	})

	d.mu.Lock()
	defer d.mu.Unlock()
	if err != nil {
		if res.Err == "" {
			res.Err = err.Error()
		}
		d.deployFails++
		d.noteDeployFailureLocked(err, c.policy)
		return res, prev
	}
	d.commits++
	d.noteDeploySuccessLocked()
	return res, prev
}

// OptimizeAndRollout runs one fleet optimization round: for each device
// model represented in the eligible fleet, it profiles the group's canary
// (first eligible device), resolves an optimized program through the
// shared plan cache — one canary's search is reused for every similar
// profile on the same (program, model) — and stages a Rollout of the
// result across the whole fleet. base is the original (unoptimized)
// program the plans are computed from.
func (c *Controller) OptimizeAndRollout(base *p4ir.Program, cfg RolloutConfig) ([]*RolloutReport, error) {
	if base == nil {
		return nil, errors.New("fleet: OptimizeAndRollout needs the base program")
	}
	eligible, _ := c.eligibleDevices()
	if len(eligible) == 0 {
		return nil, errors.New("fleet: no eligible devices")
	}
	var reports []*RolloutReport
	for _, g := range modelGroups(eligible) {
		canary := g.Devs[0]
		entry, err := c.planFor(base, canary)
		if err != nil {
			return reports, fmt.Errorf("fleet: planning for model %s via %s: %w", g.Model, canary.name, err)
		}
		if len(entry.Plan) == 0 {
			c.logf("optimize: model %s: no profitable plan, skipping rollout", g.Model)
			continue
		}
		c.logf("optimize: model %s: plan %v (est. gain %.0fns, cache %s)",
			g.Model, entry.Plan, entry.Gain, entry.Source)
		rep, err := c.Rollout(entry.Program, cfg)
		if rep != nil {
			reports = append(reports, rep)
		}
		if err != nil {
			return reports, err
		}
	}
	return reports, nil
}

// planFor resolves the optimized program for base as seen by the canary
// device's current profile, via the shared plan cache.
func (c *Controller) planFor(base *p4ir.Program, canary *device) (*PlanEntry, error) {
	var prof *profile.Profile
	err := safeCall(func() error {
		p, err := canary.tgt.Profile(false)
		if err != nil {
			return err
		}
		prof = p
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("profiling canary: %w", err)
	}
	fp := Fingerprint(base)
	sig := ProfileSignature(base, prof)
	model := canary.model
	if e, ok := c.cache.Get(fp, model, sig); ok {
		return e, nil
	}
	// Plan-cache miss: the quantized signature moved. Search on the warm
	// session for this (program, model) pair, which reuses the partition,
	// dependency analysis, and every unit whose material inputs held still.
	s, err := c.sessions.get(fp, model, base, canary.tgt.Capabilities().Params, c.optCfg)
	if err != nil {
		return nil, err
	}
	res, rw, err := s.SearchAndApply(prof)
	if err != nil {
		return nil, err
	}
	e := &PlanEntry{
		Fingerprint: fp,
		Model:       model,
		Signature:   sig,
		Gain:        res.Gain,
		Program:     base,
		Source:      "search",
	}
	if rw != nil && len(res.Plan) > 0 {
		e.Program = rw.Program
		for _, o := range res.Plan {
			e.Plan = append(e.Plan, o.String())
		}
	}
	c.cache.Put(e)
	return e, nil
}
