// Package fleet is the Pipeleon fleet controller: it owns many
// target.Targets at once — in-process emulators, remote nicd devices, or
// a mix — and layers the reliability machinery a hundreds-of-NICs
// deployment needs on top of the single-device runtime:
//
//   - a supervised health loop per device (panic isolation, probe
//     timeouts, restart budget),
//   - a Healthy → Degraded → Quarantined → Recovering state machine with
//     circuit-breaker semantics for flapping devices and probation-based
//     re-admission (device.go),
//   - staged rollouts: canary first, then exponentially growing waves,
//     with per-device measured-regression verification and an automatic
//     fleet-wide halt-and-rollback when the failure ratio crosses a
//     threshold (rollout.go),
//   - a shared plan cache keyed by program fingerprint and quantized
//     profile signature, so one canary's optimization search is reused
//     across similar devices (plancache.go).
//
// The controller degrades gracefully: quarantined devices are excluded
// from rollouts and the rest of the fleet keeps serving; recovered
// devices are converged back onto the fleet program.
//
// cmd/fleetd exposes the controller over HTTP; `p4cctl fleet` is the
// operator CLI. The package depends on target and the optimizer but —
// enforced by cmd/archlint — never on the emulator: simulated fleets are
// assembled by callers and handed in as Targets.
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pipeleon/internal/opt"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/target"
)

// Options configures a Controller.
type Options struct {
	// Policy is the device health policy; zero value → DefaultHealthPolicy.
	Policy HealthPolicy
	// Optimizer configures plan search for OptimizeAndRollout.
	Optimizer opt.Config
	// Cache is the shared plan cache; nil → a private cache of default size.
	Cache *PlanCache
	// Logf, when set, receives human-readable progress lines.
	Logf func(format string, args ...any)
}

// Controller owns a fleet of devices. All methods are safe for concurrent
// use; rollouts are serialized with each other.
type Controller struct {
	policy   HealthPolicy
	optCfg   opt.Config
	cache    *PlanCache
	sessions *sessionPool
	logf     func(string, ...any)

	mu      sync.Mutex
	devices []*device // registration order
	byName  map[string]*device

	// Fleet-level counters (reported in Status).
	rollouts       uint64
	haltedRollouts uint64
	fleetRollbacks uint64

	rolloutMu sync.Mutex // serializes rollouts
}

// New returns a Controller with no devices.
func New(opts Options) *Controller {
	pol := opts.Policy
	if pol == (HealthPolicy{}) {
		pol = DefaultHealthPolicy()
	}
	if pol.ProbeTimeout <= 0 {
		pol.ProbeTimeout = 2 * time.Second
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewPlanCache(0)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Controller{
		policy:   pol,
		optCfg:   opts.Optimizer,
		cache:    cache,
		sessions: newSessionPool(),
		logf:     logf,
		byName:   map[string]*device{},
	}
}

// Add registers a device under a unique name. Devices start Healthy.
func (c *Controller) Add(name string, tgt target.Target) error {
	if name == "" {
		return fmt.Errorf("fleet: device name must not be empty")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[name]; dup {
		return fmt.Errorf("fleet: device %q already registered", name)
	}
	d := &device{name: name, tgt: tgt, model: tgt.Capabilities().Model}
	c.devices = append(c.devices, d)
	c.byName[name] = d
	return nil
}

// snapshotDevices returns the device list in registration order.
func (c *Controller) snapshotDevices() []*device {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*device(nil), c.devices...)
}

// lookup finds a device by name.
func (c *Controller) lookup(name string) (*device, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown device %q", name)
	}
	return d, nil
}

// ProbeAll runs one synchronous probe round over every device: each
// device is probed on its own goroutine (with the policy's timeout) and
// the round has a barrier, so callers — tests, the simulator, fleetd's
// scripted scenarios — get deterministic state-machine steps. The
// supervised Run loop performs the same per-device work on a ticker.
func (c *Controller) ProbeAll() {
	devs := c.snapshotDevices()
	var wg sync.WaitGroup
	for _, d := range devs {
		wg.Add(1)
		go func(d *device) {
			defer wg.Done()
			c.probeDevice(d)
		}(d)
	}
	wg.Wait()
}

// probeDevice runs one probe step for one device, honouring sit-outs and
// charging panics against the restart budget.
func (c *Controller) probeDevice(d *device) {
	d.mu.Lock()
	if d.permanent {
		d.mu.Unlock()
		return
	}
	if d.sitOut > 0 {
		d.sitOut--
		d.mu.Unlock()
		return
	}
	if d.state == Quarantined {
		// Sit-out served: begin probation with this probe.
		d.state = Recovering
		d.consecOK = 0
	}
	d.mu.Unlock()

	err := d.probe(c.policy.ProbeTimeout)

	d.mu.Lock()
	defer d.mu.Unlock()
	d.probes++
	if err == nil {
		d.noteProbeSuccessLocked(c.policy)
		return
	}
	d.probeFails++
	if isPanicErr(err) {
		// A panicking backend is charged against the restart budget: the
		// supervisor "restarts" the device loop, and once the budget is
		// exhausted the device is quarantined permanently (until an
		// operator Recover).
		d.restarts++
		if d.restarts > c.policy.RestartBudget {
			d.permanent = true
			d.enterQuarantineLocked(c.policy)
			d.lastErr = fmt.Sprintf("restart budget exhausted (%d panics): %v", d.restarts, err)
			return
		}
	}
	d.noteProbeFailureLocked(err, c.policy)
}

// Run drives the supervised per-device probe loops until stop is closed.
// Each device gets its own goroutine ticking at interval; a panic inside
// a probe is already isolated by probeDevice, so one broken backend can
// never take down the controller or its siblings.
func (c *Controller) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	devs := c.snapshotDevices()
	var wg sync.WaitGroup
	for _, d := range devs {
		wg.Add(1)
		go func(d *device) {
			defer wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					c.probeDevice(d)
				}
			}
		}(d)
	}
	wg.Wait()
}

// Quarantine forces a device into quarantine (operator action). The
// device sits out the usual cooldown, then re-enters via probation like
// any other quarantined device.
func (c *Controller) Quarantine(name string) error {
	d, err := c.lookup(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Quarantined {
		d.enterQuarantineLocked(c.policy)
		d.lastErr = "quarantined by operator"
	}
	return nil
}

// Recover lifts a quarantine immediately (operator action): the device is
// placed on probation with a fresh restart budget, skipping the sit-out.
func (c *Controller) Recover(name string) error {
	d, err := c.lookup(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = Recovering
	d.permanent = false
	d.restarts = 0
	d.sitOut = 0
	d.consecOK = 0
	d.probeConsecFail = 0
	d.deployConsecFail = 0
	return nil
}

// eligibleDevices returns the rollout-eligible devices (Healthy first,
// then Degraded, each in registration order — so the canary is always the
// healthiest available device) and the names of the skipped ones.
func (c *Controller) eligibleDevices() (eligible []*device, skipped []string) {
	var degraded []*device
	for _, d := range c.snapshotDevices() {
		d.mu.Lock()
		st := d.state
		d.mu.Unlock()
		switch st {
		case Healthy:
			eligible = append(eligible, d)
		case Degraded:
			degraded = append(degraded, d)
		default:
			skipped = append(skipped, d.name)
		}
	}
	eligible = append(eligible, degraded...)
	return eligible, skipped
}

// modelGroups partitions eligible devices by device model, sorted by
// model name for deterministic iteration.
func modelGroups(devs []*device) []struct {
	Model string
	Devs  []*device
} {
	byModel := map[string][]*device{}
	for _, d := range devs {
		byModel[d.model] = append(byModel[d.model], d)
	}
	models := make([]string, 0, len(byModel))
	for m := range byModel {
		models = append(models, m)
	}
	sort.Strings(models)
	out := make([]struct {
		Model string
		Devs  []*device
	}, 0, len(models))
	for _, m := range models {
		out = append(out, struct {
			Model string
			Devs  []*device
		}{m, byModel[m]})
	}
	return out
}

// isPanicErr reports whether err wraps a recovered device panic.
func isPanicErr(err error) bool {
	for e := err; e != nil; {
		if e == errProbePanic {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// fingerprintOf returns the fingerprint of a device's running program, or
// "" when it cannot be read.
func fingerprintOf(tgt target.Target) string {
	var prog *p4ir.Program
	if err := safeCall(func() error {
		prog = tgt.Program()
		return nil
	}); err != nil || prog == nil {
		return ""
	}
	return Fingerprint(prog)
}
