package fleet

import (
	"fmt"

	"pipeleon/internal/faultinject"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/packet"
	"pipeleon/internal/target"
)

// scenarioPolicy is the health policy the scripted scenario runs under:
// tightened thresholds so each phase needs a deterministic, small number
// of probe rounds.
func scenarioPolicy() HealthPolicy {
	pol := DefaultHealthPolicy()
	pol.DegradedAfter = 1
	pol.QuarantineAfter = 2
	pol.BreakerThreshold = 2
	pol.QuarantineProbes = 1
	pol.ProbationProbes = 2
	pol.MaxProbeBackoff = 1
	pol.RestartBudget = 2
	return pol
}

// FaultScenarioInput bundles what RunFaultScenario needs.
type FaultScenarioInput struct {
	// Devices are the fleet members in registration order; at least 8.
	// Device 3 is scripted to crash on deploy, device 5 to regress on
	// verify, so their Scripts must be non-nil.
	Devices []FleetMember
	// Next is the program rolled out over the devices' current one.
	Next *p4ir.Program
	// Sampler feeds the rollout verification measurements.
	Sampler func(n int) []*packet.Packet
	// Logf receives progress lines (nil → silent).
	Logf func(format string, args ...any)
}

// FleetMember pairs a named target (typically a FaultTarget around an
// emulator or remote device) with the fault script the scenario queues
// decisions into. Callers assemble the members — keeping this package
// free of any emulator dependency — and RunFaultScenario drives them.
type FleetMember struct {
	Name   string
	Target target.Target
	Script *faultinject.Script
}

// RunFaultScenario drives the fleet acceptance scenario end to end and
// returns a descriptive error on the first violated assertion. It is the
// single source of truth for the fleet's failure-handling contract,
// shared by `go test ./internal/fleet` and `fleetd -scenario` (wired into
// `make fleet-sim`):
//
//	Phase 1 — canary gate: the canary's verification window is scripted
//	  to show a 10× latency regression; the rollout must halt with ZERO
//	  fan-out and the canary rolled back.
//	Phase 2 — mid-wave breach: one device crashes on deploy and another
//	  regresses on verify inside the third wave; the cumulative failure
//	  ratio (2/7) breaches the 25% threshold, so the rollout halts and
//	  every already-committed device is rolled back to the old program.
//	Phase 3 — breaker quarantine + graceful degradation: the same two
//	  devices fail a second rollout, tripping the deploy breaker; both
//	  are quarantined, and the rollout completes on the remaining six.
//	Phase 4 — probation re-admission: faults cleared, the quarantined
//	  devices serve their sit-out, pass probation, rejoin, and a final
//	  rollout converges all eight devices.
func RunFaultScenario(in FaultScenarioInput) error {
	logf := in.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(in.Devices) < 8 {
		return fmt.Errorf("fleet scenario: need at least 8 devices, got %d", len(in.Devices))
	}
	devs := in.Devices[:8]
	const crasher, flapper = 3, 5
	for _, i := range []int{0, crasher, flapper} {
		if devs[i].Script == nil {
			return fmt.Errorf("fleet scenario: device %d needs a fault script", i)
		}
	}

	ctl := New(Options{Policy: scenarioPolicy(), Logf: logf})
	for _, m := range devs {
		if err := ctl.Add(m.Name, m.Target); err != nil {
			return err
		}
	}
	cfg := RolloutConfig{
		Canary:         1,
		FirstWave:      2,
		WaveGrowth:     2,
		MaxFailureFrac: 0.25,
		// Loose allowance: only the scripted 10× regressions trip it.
		Verify: VerifyConfig{Sampler: in.Sampler, Packets: 128, MaxRegression: 1.0},
	}
	fpNext := Fingerprint(in.Next)
	fpOld := fingerprintOf(devs[0].Target)
	if fpOld == "" || fpOld == fpNext {
		return fmt.Errorf("fleet scenario: devices must start on a program different from Next (old=%q next=%q)", fpOld, fpNext)
	}
	onProgram := func(want string, names ...int) error {
		for _, i := range names {
			if got := fingerprintOf(devs[i].Target); got != want {
				return fmt.Errorf("device %s runs %q, want %q", devs[i].Name, got, want)
			}
		}
		return nil
	}
	wantState := func(i int, want State) error {
		st, err := ctl.DeviceState(devs[i].Name)
		if err != nil {
			return err
		}
		if st != want {
			return fmt.Errorf("device %s state = %s, want %s", devs[i].Name, st, want)
		}
		return nil
	}
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}

	ctl.ProbeAll()
	st := ctl.Status()
	if st.Healthy != 8 {
		return fmt.Errorf("after initial probes: %d healthy, want 8", st.Healthy)
	}

	// ---- Phase 1: canary gate -------------------------------------------
	logf("phase 1: canary verification failure must stop fan-out")
	devs[0].Script.Queue(faultinject.PointMeasure,
		faultinject.Decision{}, faultinject.Decision{Scale: 10})
	rep, err := ctl.Rollout(in.Next, cfg)
	if err != nil {
		return fmt.Errorf("phase 1 rollout: %w", err)
	}
	if !rep.Halted || rep.Attempted != 1 || len(rep.Results) != 1 {
		return fmt.Errorf("phase 1: want halt after 1 canary attempt, got halted=%v attempted=%d results=%d (%s)",
			rep.Halted, rep.Attempted, len(rep.Results), rep.HaltReason)
	}
	if rep.RolledBack {
		return fmt.Errorf("phase 1: nothing was committed, fleet rollback must not run")
	}
	if err := onProgram(fpOld, all...); err != nil {
		return fmt.Errorf("phase 1: %w", err)
	}
	ctl.ProbeAll() // healthy probe lifts the canary's Degraded mark
	if err := wantState(0, Healthy); err != nil {
		return fmt.Errorf("phase 1: %w", err)
	}

	// ---- Phase 2: mid-wave breach → halt + rollback ---------------------
	logf("phase 2: ratio breach mid-wave must roll back committed devices")
	devs[crasher].Script.Queue(faultinject.PointDeploy, faultinject.Decision{Fail: true})
	devs[flapper].Script.Queue(faultinject.PointMeasure,
		faultinject.Decision{}, faultinject.Decision{Scale: 10})
	rep, err = ctl.Rollout(in.Next, cfg)
	if err != nil {
		return fmt.Errorf("phase 2 rollout: %w", err)
	}
	if !rep.Halted || !rep.RolledBack {
		return fmt.Errorf("phase 2: want halt+rollback, got halted=%v rolledback=%v (%s)",
			rep.Halted, rep.RolledBack, rep.HaltReason)
	}
	if rep.Attempted != 7 || rep.Failed != 2 {
		return fmt.Errorf("phase 2: attempted=%d failed=%d, want 7/2", rep.Attempted, rep.Failed)
	}
	if len(rep.Committed) != 0 || len(rep.RollbackErrors) != 0 {
		return fmt.Errorf("phase 2: committed=%v rollbackErrors=%v, want none", rep.Committed, rep.RollbackErrors)
	}
	if err := onProgram(fpOld, all...); err != nil {
		return fmt.Errorf("phase 2: fleet rollback incomplete: %w", err)
	}

	// ---- Phase 3: breaker quarantine + graceful degradation -------------
	logf("phase 3: repeat offenders trip the breaker; fleet degrades gracefully")
	devs[crasher].Script.Queue(faultinject.PointDeploy, faultinject.Decision{Fail: true})
	devs[flapper].Script.Queue(faultinject.PointMeasure,
		faultinject.Decision{}, faultinject.Decision{Scale: 10})
	rep, err = ctl.Rollout(in.Next, cfg)
	if err != nil {
		return fmt.Errorf("phase 3 rollout: %w", err)
	}
	if rep.Halted {
		return fmt.Errorf("phase 3: rollout halted (%s); 2/8 failures must not breach 25%%", rep.HaltReason)
	}
	if len(rep.Committed) != 6 {
		return fmt.Errorf("phase 3: committed=%v, want the 6 working devices", rep.Committed)
	}
	if err := wantState(crasher, Quarantined); err != nil {
		return fmt.Errorf("phase 3: %w", err)
	}
	if err := wantState(flapper, Quarantined); err != nil {
		return fmt.Errorf("phase 3: %w", err)
	}
	if err := onProgram(fpNext, 0, 1, 2, 4, 6, 7); err != nil {
		return fmt.Errorf("phase 3: %w", err)
	}
	if err := onProgram(fpOld, crasher, flapper); err != nil {
		return fmt.Errorf("phase 3: %w", err)
	}
	st = ctl.Status()
	if st.Serving != 6 || st.Quarantined != 2 {
		return fmt.Errorf("phase 3: serving=%d quarantined=%d, want 6/2", st.Serving, st.Quarantined)
	}

	// Quarantined devices are excluded from the next rollout entirely.
	rep, err = ctl.Rollout(in.Next, cfg)
	if err != nil {
		return fmt.Errorf("phase 3 convergence rollout: %w", err)
	}
	if rep.Attempted != 0 || len(rep.Committed) != 6 || len(rep.Skipped) != 2 {
		return fmt.Errorf("phase 3: converged fleet should skip deploys: attempted=%d committed=%d skipped=%v",
			rep.Attempted, len(rep.Committed), rep.Skipped)
	}

	// ---- Phase 4: probation and re-admission ----------------------------
	logf("phase 4: quarantine expires, probation passes, fleet reconverges")
	for _, i := range []int{crasher, flapper} {
		if p := devs[i].Script.Pending(faultinject.PointDeploy) +
			devs[i].Script.Pending(faultinject.PointMeasure); p != 0 {
			return fmt.Errorf("phase 4: device %s still has %d faults queued", devs[i].Name, p)
		}
	}
	ctl.ProbeAll() // serves the 1-round sit-out
	ctl.ProbeAll() // Quarantined → Recovering, first probation success
	if err := wantState(crasher, Recovering); err != nil {
		return fmt.Errorf("phase 4: %w", err)
	}
	ctl.ProbeAll() // second probation success → Healthy
	if err := wantState(crasher, Healthy); err != nil {
		return fmt.Errorf("phase 4: %w", err)
	}
	if err := wantState(flapper, Healthy); err != nil {
		return fmt.Errorf("phase 4: %w", err)
	}
	rep, err = ctl.Rollout(in.Next, cfg)
	if err != nil {
		return fmt.Errorf("phase 4 rollout: %w", err)
	}
	if rep.Halted || len(rep.Committed) != 8 {
		return fmt.Errorf("phase 4: want full convergence, got halted=%v committed=%v", rep.Halted, rep.Committed)
	}
	if err := onProgram(fpNext, all...); err != nil {
		return fmt.Errorf("phase 4: %w", err)
	}
	st = ctl.Status()
	if st.Healthy != 8 || st.Serving != 8 {
		return fmt.Errorf("phase 4: healthy=%d serving=%d, want 8/8", st.Healthy, st.Serving)
	}
	if st.Rollouts != 5 || st.HaltedRollouts != 2 || st.FleetRollbacks != 1 {
		return fmt.Errorf("phase 4: rollouts=%d halted=%d fleetRollbacks=%d, want 5/2/1",
			st.Rollouts, st.HaltedRollouts, st.FleetRollbacks)
	}
	logf("scenario passed: canary gate, halt+rollback, quarantine, re-admission all verified")
	return nil
}
