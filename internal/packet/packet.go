// Package packet provides the minimal packet substrate the SmartNIC
// emulator and the traffic generator run on: Ethernet/IPv4/TCP/UDP header
// parsing and serialization (stdlib only, in the spirit of gopacket's
// decode/serialize interfaces), a named-field view used by match-action
// keys ("ipv4.srcAddr", "tcp.dport", ...), and flow hashing.
//
// Header field values are exposed as uint64 regardless of their wire
// width; widths are tracked in the field registry so LPM/ternary masks can
// be synthesized correctly.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by Parse.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrUnsupported = errors.New("packet: unsupported protocol")
)

// EtherType values understood by the parser.
const (
	EtherTypeIPv4 = 0x0800
)

// IP protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Ethernet is the L2 header.
type Ethernet struct {
	DstMAC [6]byte
	SrcMAC [6]byte
	Type   uint16
}

// IPv4 is the L3 header (options unsupported; IHL fixed at 5).
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	SrcAddr  uint32
	DstAddr  uint32
}

// TCP is the L4 TCP header (options unsupported; data offset fixed at 5).
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16
}

// UDP is the L4 UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// Packet is a parsed (or synthesized) packet plus the per-packet metadata
// fields P4 programs use ("meta.*"). The zero value is an empty non-IP
// packet.
type Packet struct {
	Eth     Ethernet
	IP      IPv4
	TCP     TCP
	UDP     UDP
	HasIPv4 bool
	HasTCP  bool
	HasUDP  bool
	Payload []byte
	// Metadata fields ("meta.x") live in a small inline array keyed by
	// interned FieldID so that metadata writes and Clone stay
	// allocation-free on the emulator's hot path — and so a Packet with
	// no payload or overflow is pointer-free, which keeps GC scanning and
	// write barriers off burst clones. Programs touching more than
	// metaInlineSlots distinct fields spill to the overflow map. Access
	// via Get/Set/GetID/SetID/MetaMap.
	nMeta    uint8
	metaKeys [metaInlineSlots]FieldID
	metaVals [metaInlineSlots]uint64
	metaOver map[FieldID]uint64
	// WireLen is the original wire length in bytes (for throughput math);
	// Serialize output may differ if fields changed.
	WireLen int
}

// metaInlineSlots is the inline metadata capacity. Synthetic workloads
// write up to three scratch fields per table plus the egress port; 24
// slots cover every program in the repo without spilling.
const metaInlineSlots = 24

// Header sizes.
const (
	ethLen  = 14
	ipv4Len = 20
	tcpLen  = 20
	udpLen  = 8
)

// Parse decodes an Ethernet/IPv4/{TCP,UDP} packet. Unknown EtherTypes or
// IP protocols parse successfully with the remaining bytes as payload —
// callers decide whether that is an error (mirroring gopacket's tolerant
// ErrorLayer behaviour).
func Parse(data []byte) (*Packet, error) {
	p := &Packet{WireLen: len(data)}
	if len(data) < ethLen {
		return nil, fmt.Errorf("%w: %d bytes for ethernet", ErrTruncated, len(data))
	}
	copy(p.Eth.DstMAC[:], data[0:6])
	copy(p.Eth.SrcMAC[:], data[6:12])
	p.Eth.Type = binary.BigEndian.Uint16(data[12:14])
	rest := data[ethLen:]
	if p.Eth.Type != EtherTypeIPv4 {
		p.Payload = rest
		return p, nil
	}
	if len(rest) < ipv4Len {
		return nil, fmt.Errorf("%w: %d bytes for ipv4", ErrTruncated, len(rest))
	}
	vihl := rest[0]
	if vihl>>4 != 4 {
		return nil, fmt.Errorf("%w: ip version %d", ErrUnsupported, vihl>>4)
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < ipv4Len || len(rest) < ihl {
		return nil, fmt.Errorf("%w: ihl %d", ErrTruncated, ihl)
	}
	p.HasIPv4 = true
	p.IP.TOS = rest[1]
	p.IP.TotalLen = binary.BigEndian.Uint16(rest[2:4])
	p.IP.ID = binary.BigEndian.Uint16(rest[4:6])
	fo := binary.BigEndian.Uint16(rest[6:8])
	p.IP.Flags = uint8(fo >> 13)
	p.IP.FragOff = fo & 0x1fff
	p.IP.TTL = rest[8]
	p.IP.Protocol = rest[9]
	p.IP.Checksum = binary.BigEndian.Uint16(rest[10:12])
	p.IP.SrcAddr = binary.BigEndian.Uint32(rest[12:16])
	p.IP.DstAddr = binary.BigEndian.Uint32(rest[16:20])
	l4 := rest[ihl:]
	switch p.IP.Protocol {
	case ProtoTCP:
		if len(l4) < tcpLen {
			return nil, fmt.Errorf("%w: %d bytes for tcp", ErrTruncated, len(l4))
		}
		p.HasTCP = true
		p.TCP.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.TCP.DstPort = binary.BigEndian.Uint16(l4[2:4])
		p.TCP.Seq = binary.BigEndian.Uint32(l4[4:8])
		p.TCP.Ack = binary.BigEndian.Uint32(l4[8:12])
		off := int(l4[12]>>4) * 4
		if off < tcpLen || len(l4) < off {
			return nil, fmt.Errorf("%w: tcp offset %d", ErrTruncated, off)
		}
		p.TCP.Flags = l4[13]
		p.TCP.Window = binary.BigEndian.Uint16(l4[14:16])
		p.TCP.Checksum = binary.BigEndian.Uint16(l4[16:18])
		p.TCP.Urgent = binary.BigEndian.Uint16(l4[18:20])
		p.Payload = l4[off:]
	case ProtoUDP:
		if len(l4) < udpLen {
			return nil, fmt.Errorf("%w: %d bytes for udp", ErrTruncated, len(l4))
		}
		p.HasUDP = true
		p.UDP.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.UDP.DstPort = binary.BigEndian.Uint16(l4[2:4])
		p.UDP.Length = binary.BigEndian.Uint16(l4[4:6])
		p.UDP.Checksum = binary.BigEndian.Uint16(l4[6:8])
		p.Payload = l4[udpLen:]
	default:
		p.Payload = l4
	}
	return p, nil
}

// Serialize encodes the packet back to wire format, recomputing lengths
// and the IPv4 header checksum (and L4 checksums over the pseudo-header).
func (p *Packet) Serialize() []byte {
	l4 := 0
	if p.HasTCP {
		l4 = tcpLen
	} else if p.HasUDP {
		l4 = udpLen
	}
	ipTotal := 0
	if p.HasIPv4 {
		ipTotal = ipv4Len + l4 + len(p.Payload)
	}
	size := ethLen + len(p.Payload)
	if p.HasIPv4 {
		size = ethLen + ipTotal
	}
	out := make([]byte, size)
	copy(out[0:6], p.Eth.DstMAC[:])
	copy(out[6:12], p.Eth.SrcMAC[:])
	binary.BigEndian.PutUint16(out[12:14], p.Eth.Type)
	if !p.HasIPv4 {
		copy(out[ethLen:], p.Payload)
		return out
	}
	ip := out[ethLen:]
	ip[0] = 0x45
	ip[1] = p.IP.TOS
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	binary.BigEndian.PutUint16(ip[4:6], p.IP.ID)
	binary.BigEndian.PutUint16(ip[6:8], uint16(p.IP.Flags)<<13|p.IP.FragOff&0x1fff)
	ip[8] = p.IP.TTL
	ip[9] = p.IP.Protocol
	binary.BigEndian.PutUint32(ip[12:16], p.IP.SrcAddr)
	binary.BigEndian.PutUint32(ip[16:20], p.IP.DstAddr)
	cs := Checksum(ip[:ipv4Len])
	binary.BigEndian.PutUint16(ip[10:12], cs)
	l4b := ip[ipv4Len:]
	switch {
	case p.HasTCP:
		binary.BigEndian.PutUint16(l4b[0:2], p.TCP.SrcPort)
		binary.BigEndian.PutUint16(l4b[2:4], p.TCP.DstPort)
		binary.BigEndian.PutUint32(l4b[4:8], p.TCP.Seq)
		binary.BigEndian.PutUint32(l4b[8:12], p.TCP.Ack)
		l4b[12] = 5 << 4
		l4b[13] = p.TCP.Flags
		binary.BigEndian.PutUint16(l4b[14:16], p.TCP.Window)
		binary.BigEndian.PutUint16(l4b[18:20], p.TCP.Urgent)
		copy(l4b[tcpLen:], p.Payload)
		binary.BigEndian.PutUint16(l4b[16:18], 0)
		sum := pseudoHeaderChecksum(p.IP.SrcAddr, p.IP.DstAddr, ProtoTCP, l4b)
		binary.BigEndian.PutUint16(l4b[16:18], sum)
	case p.HasUDP:
		binary.BigEndian.PutUint16(l4b[0:2], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(l4b[2:4], p.UDP.DstPort)
		binary.BigEndian.PutUint16(l4b[4:6], uint16(udpLen+len(p.Payload)))
		copy(l4b[udpLen:], p.Payload)
		binary.BigEndian.PutUint16(l4b[6:8], 0)
		sum := pseudoHeaderChecksum(p.IP.SrcAddr, p.IP.DstAddr, ProtoUDP, l4b)
		binary.BigEndian.PutUint16(l4b[6:8], sum)
	default:
		copy(l4b, p.Payload)
	}
	return out
}

// Checksum computes the RFC 1071 internet checksum of data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

func pseudoHeaderChecksum(src, dst uint32, proto uint8, l4 []byte) uint16 {
	ph := make([]byte, 12, 12+len(l4)+1)
	binary.BigEndian.PutUint32(ph[0:4], src)
	binary.BigEndian.PutUint32(ph[4:8], dst)
	ph[9] = proto
	binary.BigEndian.PutUint16(ph[10:12], uint16(len(l4)))
	ph = append(ph, l4...)
	return Checksum(ph)
}

// FlowKey is the canonical 5-tuple identity of a flow, usable as a map
// key. Its FastHash is symmetric-free (directional).
type FlowKey struct {
	SrcAddr, DstAddr uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Flow extracts the packet's 5-tuple.
func (p *Packet) Flow() FlowKey {
	k := FlowKey{SrcAddr: p.IP.SrcAddr, DstAddr: p.IP.DstAddr, Proto: p.IP.Protocol}
	switch {
	case p.HasTCP:
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.HasUDP:
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return k
}

// FastHash folds the flow key to 64 bits (FNV-1a over the tuple), suitable
// for core steering — packets of one flow always land on the same core.
func (k FlowKey) FastHash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64, bytes int) {
		for i := 0; i < bytes; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(k.SrcAddr), 4)
	mix(uint64(k.DstAddr), 4)
	mix(uint64(k.SrcPort), 2)
	mix(uint64(k.DstPort), 2)
	mix(uint64(k.Proto), 1)
	return h
}
