package packet

import (
	"testing"
	"testing/quick"
)

func tcpPacket() *Packet {
	return &Packet{
		Eth:     Ethernet{DstMAC: [6]byte{2, 0, 0, 0, 0, 1}, SrcMAC: [6]byte{2, 0, 0, 0, 0, 2}, Type: EtherTypeIPv4},
		IP:      IPv4{TTL: 64, Protocol: ProtoTCP, SrcAddr: 0x0a000001, DstAddr: 0x0a000002},
		TCP:     TCP{SrcPort: 12345, DstPort: 80, Seq: 1000, Flags: 0x18, Window: 65535},
		HasIPv4: true, HasTCP: true,
		Payload: []byte("hello world"),
	}
}

func TestSerializeParseRoundTripTCP(t *testing.T) {
	p := tcpPacket()
	wire := p.Serialize()
	back, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !back.HasIPv4 || !back.HasTCP {
		t.Fatal("layers lost in round trip")
	}
	if back.IP.SrcAddr != p.IP.SrcAddr || back.IP.DstAddr != p.IP.DstAddr {
		t.Error("IP addresses mangled")
	}
	if back.TCP.SrcPort != 12345 || back.TCP.DstPort != 80 || back.TCP.Seq != 1000 {
		t.Error("TCP fields mangled")
	}
	if string(back.Payload) != "hello world" {
		t.Errorf("payload = %q", back.Payload)
	}
	if back.WireLen != len(wire) {
		t.Errorf("WireLen = %d, want %d", back.WireLen, len(wire))
	}
}

func TestSerializeParseRoundTripUDP(t *testing.T) {
	p := &Packet{
		Eth:     Ethernet{Type: EtherTypeIPv4},
		IP:      IPv4{TTL: 32, Protocol: ProtoUDP, SrcAddr: 1, DstAddr: 2},
		UDP:     UDP{SrcPort: 53, DstPort: 5353},
		HasIPv4: true, HasUDP: true,
		Payload: []byte{1, 2, 3},
	}
	back, err := Parse(p.Serialize())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !back.HasUDP || back.UDP.SrcPort != 53 || back.UDP.DstPort != 5353 {
		t.Errorf("UDP fields: %+v", back.UDP)
	}
	if len(back.Payload) != 3 {
		t.Errorf("payload len = %d", len(back.Payload))
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	wire := tcpPacket().Serialize()
	// Verify the IP header checksums to zero.
	ipHdr := wire[14 : 14+20]
	if got := Checksum(ipHdr); got != 0 {
		t.Errorf("IP header checksum over full header = %#x, want 0", got)
	}
}

func TestParseTruncated(t *testing.T) {
	wire := tcpPacket().Serialize()
	for _, n := range []int{0, 5, 13, 20, 33, 40, 50} {
		if n >= len(wire) {
			continue
		}
		if _, err := Parse(wire[:n]); err == nil {
			t.Errorf("Parse accepted %d-byte truncation", n)
		}
	}
}

func TestParseNonIPv4Tolerated(t *testing.T) {
	raw := make([]byte, 60)
	raw[12], raw[13] = 0x08, 0x06 // ARP
	p, err := Parse(raw)
	if err != nil {
		t.Fatalf("non-IP packet should parse tolerantly: %v", err)
	}
	if p.HasIPv4 {
		t.Error("ARP packet must not claim IPv4")
	}
	if len(p.Payload) != 46 {
		t.Errorf("payload = %d bytes, want 46", len(p.Payload))
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	p := tcpPacket()
	for _, name := range KnownFields() {
		v, ok := p.Get(name)
		if !ok {
			t.Errorf("Get(%q) not ok", name)
			continue
		}
		// Writing the same value back must be a no-op.
		if err := p.Set(name, v); err != nil {
			t.Errorf("Set(%q): %v", name, err)
		}
		v2, _ := p.Get(name)
		if v2 != v {
			t.Errorf("field %q: %v != %v after set", name, v2, v)
		}
	}
}

func TestMetaFields(t *testing.T) {
	p := &Packet{}
	if v, ok := p.Get("meta.x"); !ok || v != 0 {
		t.Errorf("unset meta should read 0, got %v %v", v, ok)
	}
	if err := p.Set("meta.x", 42); err != nil {
		t.Fatalf("Set meta: %v", err)
	}
	if v, _ := p.Get("meta.x"); v != 42 {
		t.Errorf("meta.x = %v, want 42", v)
	}
}

func TestSetUnknownFieldErrors(t *testing.T) {
	p := &Packet{}
	if err := p.Set("bogus.field", 1); err == nil {
		t.Error("Set of unknown field should error")
	}
	if _, ok := p.Get("bogus.field"); ok {
		t.Error("Get of unknown field should not be ok")
	}
}

func TestFieldWidth(t *testing.T) {
	if FieldWidth("ipv4.srcAddr") != 32 || FieldWidth("tcp.dport") != 16 || FieldWidth("eth.srcMac") != 48 {
		t.Error("wrong widths")
	}
	if FieldWidth("meta.anything") != 32 {
		t.Error("meta default should be 32")
	}
}

func TestFlowKeyAndHash(t *testing.T) {
	p := tcpPacket()
	k := p.Flow()
	if k.SrcPort != 12345 || k.DstPort != 80 || k.Proto != ProtoTCP {
		t.Errorf("flow = %+v", k)
	}
	k2 := k
	if k.FastHash() != k2.FastHash() {
		t.Error("hash not deterministic")
	}
	k2.DstPort = 81
	if k.FastHash() == k2.FastHash() {
		t.Error("different flows should (overwhelmingly) hash differently")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := tcpPacket()
	p.Set("meta.a", 1)
	c := p.Clone()
	c.Set("meta.a", 2)
	c.IP.TTL = 1
	if v, _ := p.Get("meta.a"); v != 1 {
		t.Error("clone shares meta map")
	}
	if p.IP.TTL != 64 {
		t.Error("clone shares header struct")
	}
}

// Property: any (src, dst, sport, dport) synthesized packet round-trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sport, dport uint16, ttl uint8) bool {
		p := &Packet{
			Eth:     Ethernet{Type: EtherTypeIPv4},
			IP:      IPv4{TTL: ttl, Protocol: ProtoTCP, SrcAddr: src, DstAddr: dst},
			TCP:     TCP{SrcPort: sport, DstPort: dport},
			HasIPv4: true, HasTCP: true,
		}
		back, err := Parse(p.Serialize())
		if err != nil {
			return false
		}
		return back.IP.SrcAddr == src && back.IP.DstAddr == dst &&
			back.TCP.SrcPort == sport && back.TCP.DstPort == dport && back.IP.TTL == ttl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#x, want 0x220d", got)
	}
}
