package packet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FieldInfo describes a named header field available to match-action keys.
type FieldInfo struct {
	Name  string
	Width int // bits
}

// FieldID is the compiled form of a field name: a small integer the
// emulator's execution plans resolve once at table/action compile time so
// the per-packet path reads and writes fields by index instead of by
// string switch. IDs below metaBase address fixed header fields; IDs at or
// above metaBase address interned "meta.*" scratch fields.
type FieldID int32

// FieldInvalid marks an unresolvable field reference; compiled operands
// carrying it fall back to the string API (which reports the miss).
const FieldInvalid FieldID = -1

// Header field IDs, in registry order.
const (
	fieldEthDstMac FieldID = iota
	fieldEthSrcMac
	fieldEthType
	fieldIPTOS
	fieldIPTTL
	fieldIPProto
	fieldIPSrcAddr
	fieldIPDstAddr
	fieldIPID
	fieldTCPSport
	fieldTCPDport
	fieldTCPSeq
	fieldTCPFlags
	fieldUDPSport
	fieldUDPDport
)

// metaBase is the first metadata FieldID; meta IDs are assigned by
// interning order and only ever grow.
const metaBase FieldID = 256

// registry lists every addressable header field with its wire width.
// Metadata fields ("meta.*") are dynamic 32-bit scratch fields.
var registry = map[string]FieldInfo{
	"eth.dstMac":   {"eth.dstMac", 48},
	"eth.srcMac":   {"eth.srcMac", 48},
	"eth.type":     {"eth.type", 16},
	"ipv4.tos":     {"ipv4.tos", 8},
	"ipv4.ttl":     {"ipv4.ttl", 8},
	"ipv4.proto":   {"ipv4.proto", 8},
	"ipv4.srcAddr": {"ipv4.srcAddr", 32},
	"ipv4.dstAddr": {"ipv4.dstAddr", 32},
	"ipv4.id":      {"ipv4.id", 16},
	"tcp.sport":    {"tcp.sport", 16},
	"tcp.dport":    {"tcp.dport", 16},
	"tcp.seq":      {"tcp.seq", 32},
	"tcp.flags":    {"tcp.flags", 8},
	"udp.sport":    {"udp.sport", 16},
	"udp.dport":    {"udp.dport", 16},
}

// headerIDs maps header field names to their fixed IDs.
var headerIDs = map[string]FieldID{
	"eth.dstMac":   fieldEthDstMac,
	"eth.srcMac":   fieldEthSrcMac,
	"eth.type":     fieldEthType,
	"ipv4.tos":     fieldIPTOS,
	"ipv4.ttl":     fieldIPTTL,
	"ipv4.proto":   fieldIPProto,
	"ipv4.srcAddr": fieldIPSrcAddr,
	"ipv4.dstAddr": fieldIPDstAddr,
	"ipv4.id":      fieldIPID,
	"tcp.sport":    fieldTCPSport,
	"tcp.dport":    fieldTCPDport,
	"tcp.seq":      fieldTCPSeq,
	"tcp.flags":    fieldTCPFlags,
	"udp.sport":    fieldUDPSport,
	"udp.dport":    fieldUDPDport,
}

// metaReg interns "meta.*" names to IDs. Interning happens at program
// compile / packet synthesis time; the per-packet path only compares the
// resulting integers, which also keeps Packet free of interior pointers.
var metaReg = struct {
	sync.RWMutex
	ids   map[string]FieldID
	names []string
}{ids: map[string]FieldID{}}

// FieldIDFor resolves a field name to its ID, interning metadata names on
// first use. Unknown non-meta names return FieldInvalid.
func FieldIDFor(name string) FieldID {
	if id, ok := headerIDs[name]; ok {
		return id
	}
	if !strings.HasPrefix(name, "meta.") {
		return FieldInvalid
	}
	metaReg.RLock()
	id, ok := metaReg.ids[name]
	metaReg.RUnlock()
	if ok {
		return id
	}
	metaReg.Lock()
	defer metaReg.Unlock()
	if id, ok := metaReg.ids[name]; ok {
		return id
	}
	id = metaBase + FieldID(len(metaReg.names))
	metaReg.ids[name] = id
	metaReg.names = append(metaReg.names, name)
	return id
}

// FieldName returns the name for a FieldID ("" for FieldInvalid or an
// unassigned meta ID).
func FieldName(id FieldID) string {
	if id >= metaBase {
		metaReg.RLock()
		defer metaReg.RUnlock()
		if i := int(id - metaBase); i < len(metaReg.names) {
			return metaReg.names[i]
		}
		return ""
	}
	switch id {
	case fieldEthDstMac:
		return "eth.dstMac"
	case fieldEthSrcMac:
		return "eth.srcMac"
	case fieldEthType:
		return "eth.type"
	case fieldIPTOS:
		return "ipv4.tos"
	case fieldIPTTL:
		return "ipv4.ttl"
	case fieldIPProto:
		return "ipv4.proto"
	case fieldIPSrcAddr:
		return "ipv4.srcAddr"
	case fieldIPDstAddr:
		return "ipv4.dstAddr"
	case fieldIPID:
		return "ipv4.id"
	case fieldTCPSport:
		return "tcp.sport"
	case fieldTCPDport:
		return "tcp.dport"
	case fieldTCPSeq:
		return "tcp.seq"
	case fieldTCPFlags:
		return "tcp.flags"
	case fieldUDPSport:
		return "udp.sport"
	case fieldUDPDport:
		return "udp.dport"
	}
	return ""
}

// FieldWidth returns the bit width of a field name. Unknown and metadata
// fields report 32.
func FieldWidth(name string) int {
	if fi, ok := registry[name]; ok {
		return fi.Width
	}
	return 32
}

// KnownFields returns the registered non-metadata field names, sorted.
func KnownFields() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get reads a named field from the packet. Metadata fields read zero when
// absent. ok is false only for unknown non-meta names.
func (p *Packet) Get(name string) (uint64, bool) {
	id := FieldIDFor(name)
	if id == FieldInvalid {
		return 0, false
	}
	return p.GetID(id), true
}

// GetID reads a field by compiled ID. Absent metadata fields read zero.
func (p *Packet) GetID(id FieldID) uint64 {
	if id >= metaBase {
		for i := 0; i < int(p.nMeta); i++ {
			if p.metaKeys[i] == id {
				return p.metaVals[i]
			}
		}
		return p.metaOver[id]
	}
	switch id {
	case fieldEthDstMac:
		return macToU64(p.Eth.DstMAC)
	case fieldEthSrcMac:
		return macToU64(p.Eth.SrcMAC)
	case fieldEthType:
		return uint64(p.Eth.Type)
	case fieldIPTOS:
		return uint64(p.IP.TOS)
	case fieldIPTTL:
		return uint64(p.IP.TTL)
	case fieldIPProto:
		return uint64(p.IP.Protocol)
	case fieldIPSrcAddr:
		return uint64(p.IP.SrcAddr)
	case fieldIPDstAddr:
		return uint64(p.IP.DstAddr)
	case fieldIPID:
		return uint64(p.IP.ID)
	case fieldTCPSport:
		return uint64(p.TCP.SrcPort)
	case fieldTCPDport:
		return uint64(p.TCP.DstPort)
	case fieldTCPSeq:
		return uint64(p.TCP.Seq)
	case fieldTCPFlags:
		return uint64(p.TCP.Flags)
	case fieldUDPSport:
		return uint64(p.UDP.SrcPort)
	case fieldUDPDport:
		return uint64(p.UDP.DstPort)
	}
	return 0
}

// Set writes a named field. Unknown non-meta names return an error.
func (p *Packet) Set(name string, v uint64) error {
	id := FieldIDFor(name)
	if id == FieldInvalid {
		return fmt.Errorf("packet: unknown field %q", name)
	}
	p.SetID(id, v)
	return nil
}

// SetID writes a field by compiled ID. Writes to FieldInvalid are dropped.
func (p *Packet) SetID(id FieldID, v uint64) {
	if id >= metaBase {
		for i := 0; i < int(p.nMeta); i++ {
			if p.metaKeys[i] == id {
				p.metaVals[i] = v
				return
			}
		}
		if p.metaOver != nil {
			if _, ok := p.metaOver[id]; ok {
				p.metaOver[id] = v
				return
			}
		}
		if int(p.nMeta) < metaInlineSlots {
			p.metaKeys[p.nMeta] = id
			p.metaVals[p.nMeta] = v
			p.nMeta++
			return
		}
		if p.metaOver == nil {
			p.metaOver = map[FieldID]uint64{}
		}
		p.metaOver[id] = v
		return
	}
	switch id {
	case fieldEthDstMac:
		u64ToMAC(v, &p.Eth.DstMAC)
	case fieldEthSrcMac:
		u64ToMAC(v, &p.Eth.SrcMAC)
	case fieldEthType:
		p.Eth.Type = uint16(v)
	case fieldIPTOS:
		p.IP.TOS = uint8(v)
	case fieldIPTTL:
		p.IP.TTL = uint8(v)
	case fieldIPProto:
		p.IP.Protocol = uint8(v)
	case fieldIPSrcAddr:
		p.IP.SrcAddr = uint32(v)
	case fieldIPDstAddr:
		p.IP.DstAddr = uint32(v)
	case fieldIPID:
		p.IP.ID = uint16(v)
	case fieldTCPSport:
		p.TCP.SrcPort = uint16(v)
	case fieldTCPDport:
		p.TCP.DstPort = uint16(v)
	case fieldTCPSeq:
		p.TCP.Seq = uint32(v)
	case fieldTCPFlags:
		p.TCP.Flags = uint8(v)
	case fieldUDPSport:
		p.UDP.SrcPort = uint16(v)
	case fieldUDPDport:
		p.UDP.DstPort = uint16(v)
	}
}

func macToU64(m [6]byte) uint64 {
	var v uint64
	for _, b := range m {
		v = v<<8 | uint64(b)
	}
	return v
}

func u64ToMAC(v uint64, m *[6]byte) {
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
}

// Clone deep-copies the packet (payload shared — it is immutable in the
// emulator; metadata copied). Packets whose metadata fits the inline
// slots clone in a single allocation.
func (p *Packet) Clone() *Packet {
	cp := new(Packet)
	p.CloneInto(cp)
	return cp
}

// CloneInto copies the packet into dst, reusing dst's storage — the
// allocation-free form of Clone the burst measurement loops use (one
// scratch Packet per worker instead of one heap clone per packet). Like
// Clone, the payload is shared and metadata is deep-copied.
func (p *Packet) CloneInto(dst *Packet) {
	*dst = *p
	if p.metaOver != nil {
		over := make(map[FieldID]uint64, len(p.metaOver))
		for k, v := range p.metaOver {
			over[k] = v
		}
		dst.metaOver = over
	}
}

// MetaMap returns a copy of all metadata fields keyed by full name
// ("meta.x"). Intended for tests and debugging, not the hot path.
func (p *Packet) MetaMap() map[string]uint64 {
	out := make(map[string]uint64, int(p.nMeta)+len(p.metaOver))
	for i := 0; i < int(p.nMeta); i++ {
		out[FieldName(p.metaKeys[i])] = p.metaVals[i]
	}
	for k, v := range p.metaOver {
		out[FieldName(k)] = v
	}
	return out
}

// ClearMeta removes every metadata field.
func (p *Packet) ClearMeta() {
	for i := 0; i < int(p.nMeta); i++ {
		p.metaKeys[i] = 0
		p.metaVals[i] = 0
	}
	p.nMeta = 0
	p.metaOver = nil
}
