package packet

import (
	"fmt"
	"sort"
	"strings"
)

// FieldInfo describes a named header field available to match-action keys.
type FieldInfo struct {
	Name  string
	Width int // bits
}

// registry lists every addressable header field with its wire width.
// Metadata fields ("meta.*") are dynamic 32-bit scratch fields.
var registry = map[string]FieldInfo{
	"eth.dstMac":   {"eth.dstMac", 48},
	"eth.srcMac":   {"eth.srcMac", 48},
	"eth.type":     {"eth.type", 16},
	"ipv4.tos":     {"ipv4.tos", 8},
	"ipv4.ttl":     {"ipv4.ttl", 8},
	"ipv4.proto":   {"ipv4.proto", 8},
	"ipv4.srcAddr": {"ipv4.srcAddr", 32},
	"ipv4.dstAddr": {"ipv4.dstAddr", 32},
	"ipv4.id":      {"ipv4.id", 16},
	"tcp.sport":    {"tcp.sport", 16},
	"tcp.dport":    {"tcp.dport", 16},
	"tcp.seq":      {"tcp.seq", 32},
	"tcp.flags":    {"tcp.flags", 8},
	"udp.sport":    {"udp.sport", 16},
	"udp.dport":    {"udp.dport", 16},
}

// FieldWidth returns the bit width of a field name. Unknown and metadata
// fields report 32.
func FieldWidth(name string) int {
	if fi, ok := registry[name]; ok {
		return fi.Width
	}
	return 32
}

// KnownFields returns the registered non-metadata field names, sorted.
func KnownFields() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get reads a named field from the packet. Metadata fields read zero when
// absent. ok is false only for unknown non-meta names.
func (p *Packet) Get(name string) (uint64, bool) {
	if strings.HasPrefix(name, "meta.") {
		for i := 0; i < int(p.nMeta); i++ {
			if p.metaKeys[i] == name {
				return p.metaVals[i], true
			}
		}
		return p.metaOver[name], true
	}
	switch name {
	case "eth.dstMac":
		return macToU64(p.Eth.DstMAC), true
	case "eth.srcMac":
		return macToU64(p.Eth.SrcMAC), true
	case "eth.type":
		return uint64(p.Eth.Type), true
	case "ipv4.tos":
		return uint64(p.IP.TOS), true
	case "ipv4.ttl":
		return uint64(p.IP.TTL), true
	case "ipv4.proto":
		return uint64(p.IP.Protocol), true
	case "ipv4.srcAddr":
		return uint64(p.IP.SrcAddr), true
	case "ipv4.dstAddr":
		return uint64(p.IP.DstAddr), true
	case "ipv4.id":
		return uint64(p.IP.ID), true
	case "tcp.sport":
		return uint64(p.TCP.SrcPort), true
	case "tcp.dport":
		return uint64(p.TCP.DstPort), true
	case "tcp.seq":
		return uint64(p.TCP.Seq), true
	case "tcp.flags":
		return uint64(p.TCP.Flags), true
	case "udp.sport":
		return uint64(p.UDP.SrcPort), true
	case "udp.dport":
		return uint64(p.UDP.DstPort), true
	}
	return 0, false
}

// Set writes a named field. Unknown non-meta names return an error.
func (p *Packet) Set(name string, v uint64) error {
	if strings.HasPrefix(name, "meta.") {
		for i := 0; i < int(p.nMeta); i++ {
			if p.metaKeys[i] == name {
				p.metaVals[i] = v
				return nil
			}
		}
		if p.metaOver != nil {
			if _, ok := p.metaOver[name]; ok {
				p.metaOver[name] = v
				return nil
			}
		}
		if int(p.nMeta) < metaInlineSlots {
			p.metaKeys[p.nMeta] = name
			p.metaVals[p.nMeta] = v
			p.nMeta++
			return nil
		}
		if p.metaOver == nil {
			p.metaOver = map[string]uint64{}
		}
		p.metaOver[name] = v
		return nil
	}
	switch name {
	case "eth.dstMac":
		u64ToMAC(v, &p.Eth.DstMAC)
	case "eth.srcMac":
		u64ToMAC(v, &p.Eth.SrcMAC)
	case "eth.type":
		p.Eth.Type = uint16(v)
	case "ipv4.tos":
		p.IP.TOS = uint8(v)
	case "ipv4.ttl":
		p.IP.TTL = uint8(v)
	case "ipv4.proto":
		p.IP.Protocol = uint8(v)
	case "ipv4.srcAddr":
		p.IP.SrcAddr = uint32(v)
	case "ipv4.dstAddr":
		p.IP.DstAddr = uint32(v)
	case "ipv4.id":
		p.IP.ID = uint16(v)
	case "tcp.sport":
		p.TCP.SrcPort = uint16(v)
	case "tcp.dport":
		p.TCP.DstPort = uint16(v)
	case "tcp.seq":
		p.TCP.Seq = uint32(v)
	case "tcp.flags":
		p.TCP.Flags = uint8(v)
	case "udp.sport":
		p.UDP.SrcPort = uint16(v)
	case "udp.dport":
		p.UDP.DstPort = uint16(v)
	default:
		return fmt.Errorf("packet: unknown field %q", name)
	}
	return nil
}

func macToU64(m [6]byte) uint64 {
	var v uint64
	for _, b := range m {
		v = v<<8 | uint64(b)
	}
	return v
}

func u64ToMAC(v uint64, m *[6]byte) {
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
}

// Clone deep-copies the packet (payload shared — it is immutable in the
// emulator; metadata copied). Packets whose metadata fits the inline
// slots clone in a single allocation.
func (p *Packet) Clone() *Packet {
	cp := *p
	if p.metaOver != nil {
		cp.metaOver = make(map[string]uint64, len(p.metaOver))
		for k, v := range p.metaOver {
			cp.metaOver[k] = v
		}
	}
	return &cp
}

// MetaMap returns a copy of all metadata fields keyed by full name
// ("meta.x"). Intended for tests and debugging, not the hot path.
func (p *Packet) MetaMap() map[string]uint64 {
	out := make(map[string]uint64, int(p.nMeta)+len(p.metaOver))
	for i := 0; i < int(p.nMeta); i++ {
		out[p.metaKeys[i]] = p.metaVals[i]
	}
	for k, v := range p.metaOver {
		out[k] = v
	}
	return out
}

// ClearMeta removes every metadata field.
func (p *Packet) ClearMeta() {
	for i := 0; i < int(p.nMeta); i++ {
		p.metaKeys[i] = ""
		p.metaVals[i] = 0
	}
	p.nMeta = 0
	p.metaOver = nil
}
