// Package diag defines the multi-diagnostic vocabulary shared by the
// p4ir structural checks and the internal/analysis semantic rules: stable
// rule codes, warn/error severities, node/field positions, and collect-all
// lists instead of fail-fast single errors. It sits below p4ir in the
// dependency order (standard library only) so the IR itself can emit
// diagnostics without importing the analyzer.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic. Errors block deployment; warnings are
// surfaced but do not gate.
type Severity int

const (
	// Warn flags suspicious-but-deployable constructs.
	Warn Severity = iota
	// Error flags programs that must not be deployed.
	Error
)

// String returns "warn" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// MarshalText encodes the severity as "warn"/"error" for JSON transport
// (the control plane ships diagnostics to remote clients).
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText decodes "warn"/"error".
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "warn":
		*s = Warn
	case "error":
		*s = Error
	default:
		return fmt.Errorf("diag: unknown severity %q", b)
	}
	return nil
}

// Diagnostic is one finding: a stable rule code, a severity, the node (and
// optionally the field) it anchors to, and a human-readable message.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Node     string   `json:"node,omitempty"`
	Field    string   `json:"field,omitempty"`
	Message  string   `json:"message"`
}

// String renders "CODE severity node(field): message".
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.Code)
	b.WriteByte(' ')
	b.WriteString(d.Severity.String())
	if d.Node != "" {
		b.WriteByte(' ')
		b.WriteString(d.Node)
		if d.Field != "" {
			b.WriteByte('(')
			b.WriteString(d.Field)
			b.WriteByte(')')
		}
	}
	b.WriteString(": ")
	b.WriteString(d.Message)
	return b.String()
}

// List is an ordered collection of diagnostics.
type List []Diagnostic

// Add appends a diagnostic built from a format string.
func (l *List) Add(code string, sev Severity, node, field, format string, args ...interface{}) {
	*l = append(*l, Diagnostic{
		Code:     code,
		Severity: sev,
		Node:     node,
		Field:    field,
		Message:  fmt.Sprintf(format, args...),
	})
}

// HasErrors reports whether any diagnostic has Error severity.
func (l List) HasErrors() bool {
	for _, d := range l {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors returns only the Error-severity diagnostics.
func (l List) Errors() List { return l.filter(Error) }

// Warnings returns only the Warn-severity diagnostics.
func (l List) Warnings() List { return l.filter(Warn) }

func (l List) filter(sev Severity) List {
	var out List
	for _, d := range l {
		if d.Severity == sev {
			out = append(out, d)
		}
	}
	return out
}

// ByCode returns the diagnostics carrying the given rule code.
func (l List) ByCode(code string) List {
	var out List
	for _, d := range l {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// Strings renders every diagnostic (for reports and CLI output).
func (l List) Strings() []string {
	out := make([]string, len(l))
	for i, d := range l {
		out[i] = d.String()
	}
	return out
}

// Sort orders the list by (code, node, field, message) for deterministic
// output regardless of map-iteration order in the producers.
func (l List) Sort() {
	sort.Slice(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Field != b.Field {
			return a.Field < b.Field
		}
		return a.Message < b.Message
	})
}
