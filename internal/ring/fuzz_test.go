package ring

import "testing"

// FuzzSPSCOps drives one ring through an arbitrary op sequence against a
// plain slice model: every TryPush/TryPop/TryPopBatch/Close outcome, every
// popped value, and Len after every step must match the model exactly
// (single-threaded, so the SPSC ownership rule is trivially respected).
// This pins the FIFO property, the full/empty boundary conditions of the
// power-of-two index arithmetic, and the Close-drain semantics.
func FuzzSPSCOps(f *testing.F) {
	f.Add(byte(4), []byte{0, 0, 1, 0, 2, 1, 3, 1, 1})
	f.Add(byte(1), []byte{0, 0, 0, 0, 1, 1, 1})     // overflow a tiny ring
	f.Add(byte(64), []byte{0, 1, 0, 1, 0, 1})       // ping-pong
	f.Add(byte(8), []byte{3, 0, 1})                 // close first: pushes fail
	f.Add(byte(8), []byte{0, 0, 0, 3, 1, 1, 1, 1})  // close with queued items drains
	f.Add(byte(16), []byte{0, 0, 0, 0, 0, 2, 2, 2}) // batch drains
	f.Fuzz(func(t *testing.T, capacity byte, ops []byte) {
		r := New[uint64](int(capacity%64) + 1)
		var model []uint64
		var next uint64
		closed := false
		for _, op := range ops {
			switch op % 4 {
			case 0: // TryPush
				ok := r.TryPush(next)
				wantOK := !closed && len(model) < r.Cap()
				if ok != wantOK {
					t.Fatalf("TryPush(%d) = %v, want %v (len %d cap %d closed %v)",
						next, ok, wantOK, len(model), r.Cap(), closed)
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // TryPop
				v, ok := r.TryPop()
				if ok != (len(model) > 0) {
					t.Fatalf("TryPop ok = %v with %d queued", ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("TryPop = %d, want %d (FIFO violated)", v, model[0])
					}
					model = model[1:]
				}
			case 2: // TryPopBatch
				dst := make([]uint64, int(op)%5)
				n := r.TryPopBatch(dst)
				want := len(dst)
				if want > len(model) {
					want = len(model)
				}
				if n != want {
					t.Fatalf("TryPopBatch popped %d, want %d", n, want)
				}
				for i := 0; i < n; i++ {
					if dst[i] != model[i] {
						t.Fatalf("TryPopBatch[%d] = %d, want %d", i, dst[i], model[i])
					}
				}
				model = model[n:]
			case 3: // Close (idempotent)
				r.Close()
				closed = true
				if !r.Closed() {
					t.Fatal("Closed() false after Close")
				}
			}
			if r.Len() != len(model) {
				t.Fatalf("Len = %d, model has %d", r.Len(), len(model))
			}
		}
		// Drain: everything queued must come out in order, then empty.
		for len(model) > 0 {
			v, ok := r.TryPop()
			if !ok || v != model[0] {
				t.Fatalf("drain: got (%d,%v), want (%d,true)", v, ok, model[0])
			}
			model = model[1:]
		}
		if _, ok := r.TryPop(); ok {
			t.Fatal("TryPop succeeded on empty ring")
		}
	})
}
