// Package ring provides a single-producer single-consumer ring buffer —
// the DPDK rte_ring idiom the emulator's parallel measurement path uses
// between the traffic producer and per-core workers. Compared to a Go
// channel, an SPSC ring has no lock, no goroutine parking on the fast
// path, and burst-friendly semantics: the producer and consumer each own
// one index and synchronize only through two atomics.
//
// Exactly one goroutine may push and one may pop. Close is safe from
// either side (or a third); after Close, pushes fail immediately and pops
// drain the remaining items before reporting closed — so an abandoned
// consumer never strands a producer (Push unblocks via Close or context
// cancellation) and a closing producer never loses queued items.
package ring

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"
)

// SPSC is a bounded single-producer single-consumer queue. The zero value
// is not usable; call New.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	// head is the consumer cursor, tail the producer cursor; slot i of a
	// cursor value c is buf[c&mask]. Padding keeps the two cursors on
	// separate cache lines so producer and consumer don't false-share.
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
	_    [56]byte

	closed atomic.Bool
}

// New returns a ring with capacity rounded up to the next power of two
// (minimum 2).
func New[T any](capacity int) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued items (approximate under concurrency).
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Close marks the ring closed. Queued items remain poppable; further
// pushes fail. Idempotent.
func (r *SPSC[T]) Close() { r.closed.Store(true) }

// Closed reports whether Close was called.
func (r *SPSC[T]) Closed() bool { return r.closed.Load() }

// TryPush enqueues v without blocking. It fails when the ring is full or
// closed.
func (r *SPSC[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// TryPop dequeues without blocking. ok is false when the ring is empty
// (closed or not).
func (r *SPSC[T]) TryPop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return v, false
	}
	var zero T
	v = r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // drop the reference so the GC can reclaim it
	r.head.Store(h + 1)
	return v, true
}

// TryPopBatch dequeues up to len(dst) items without blocking, returning
// how many were popped — the consumer-side burst drain.
func (r *SPSC[T]) TryPopBatch(dst []T) int {
	h := r.head.Load()
	n := int(r.tail.Load() - h)
	if n > len(dst) {
		n = len(dst)
	}
	var zero T
	for i := 0; i < n; i++ {
		dst[i] = r.buf[(h+uint64(i))&r.mask]
		r.buf[(h+uint64(i))&r.mask] = zero
	}
	if n > 0 {
		r.head.Store(h + uint64(n))
	}
	return n
}

// Push enqueues v, spinning (with escalating yields) while the ring is
// full. It returns false — without enqueuing — once the ring is closed or
// ctx is done, so a producer whose consumer abandoned the ring always
// unwinds instead of leaking.
func (r *SPSC[T]) Push(ctx context.Context, v T) bool {
	for spins := 0; ; spins++ {
		if r.TryPush(v) {
			return true
		}
		if r.closed.Load() || ctx.Err() != nil {
			return false
		}
		backoff(spins)
	}
}

// Pop dequeues one item, spinning while the ring is empty. It returns
// false once the ring is closed and fully drained, or ctx is done.
func (r *SPSC[T]) Pop(ctx context.Context) (v T, ok bool) {
	for spins := 0; ; spins++ {
		if v, ok = r.TryPop(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Re-check after observing closed: the producer may have
			// pushed between our TryPop and its Close.
			return r.TryPop()
		}
		if ctx.Err() != nil {
			return v, false
		}
		backoff(spins)
	}
}

// backoff yields the processor, escalating from scheduler yields to
// short sleeps so a spinning side cannot starve its peer on a
// single-core runner.
func backoff(spins int) {
	if spins < 64 {
		runtime.Gosched()
		return
	}
	d := time.Duration(spins-63) * time.Microsecond
	if d > 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	time.Sleep(d)
}
