package profile

import (
	"encoding/json"
	"testing"
)

// Profiles travel as JSON through the control plane and the pipeleon CLI
// (-profile); the snapshot must round-trip losslessly.
func TestProfileJSONRoundTrip(t *testing.T) {
	col := NewCollector()
	col.RecordAction("t1", "a")
	col.RecordAction("t1", "a")
	col.RecordAction("t1", "b")
	col.RecordBranch("c1", true)
	col.RecordBranch("c1", false)
	col.RecordCache("cache1", true)
	col.RecordCache("cache1", false)
	col.ObserveUpdateRate("t1", 123.5)
	col.RecordKey("t1", 1)
	col.RecordKey("t1", 2)
	col.RecordFlow(99)
	p := col.Snapshot()

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.TableTotal("t1") != 3 {
		t.Errorf("TableTotal = %d", back.TableTotal("t1"))
	}
	if back.BranchCounts["c1"] != [2]uint64{1, 1} {
		t.Errorf("BranchCounts = %v", back.BranchCounts["c1"])
	}
	if r, ok := back.CacheHitRate("cache1"); !ok || r != 0.5 {
		t.Errorf("hit rate = %v %v", r, ok)
	}
	if back.UpdateRate("t1") != 123.5 {
		t.Errorf("update rate = %v", back.UpdateRate("t1"))
	}
	if back.Cardinality("t1", 0) != 2 {
		t.Errorf("cardinality = %d", back.Cardinality("t1", 0))
	}
	if back.FlowCardinality != 1 {
		t.Errorf("flow cardinality = %d", back.FlowCardinality)
	}
	if back.SampleRate != 1 {
		t.Errorf("sample rate = %v", back.SampleRate)
	}
}

func TestFlowCardinalityTracking(t *testing.T) {
	col := NewCollector()
	for i := 0; i < 100; i++ {
		col.RecordFlow(uint64(i % 25))
	}
	if got := col.Snapshot().FlowCardinality; got != 25 {
		t.Errorf("flow cardinality = %d, want 25", got)
	}
	col.Reset()
	if got := col.Snapshot().FlowCardinality; got != 0 {
		t.Errorf("flow cardinality after reset = %d", got)
	}
}
