// Package profile implements Pipeleon's runtime profiles (§2, §4.1.2): the
// per-action and per-branch packet counters collected by instrumenting the
// program, the table entry counts and entry-update rates observed through
// the control-plane API, and the probability queries the cost model and the
// hot-pipelet detector issue against them.
//
// A Collector is the concurrent write side, updated by the emulator's
// packet-processing cores (with optional 1/N sampling, §5.4.1). A Profile
// is an immutable snapshot used by the optimizer.
package profile

import (
	"sync"
	"sync/atomic"

	"pipeleon/internal/p4ir"
)

// Profile is a point-in-time snapshot of runtime behaviour.
type Profile struct {
	// ActionCounts[table][action] counts packets that executed the action.
	ActionCounts map[string]map[string]uint64
	// BranchCounts[cond] counts {true, false} outcomes.
	BranchCounts map[string][2]uint64
	// CacheHits / CacheMisses are recorded per cache table so the runtime
	// can evaluate observed hit rates against the plan's estimate.
	CacheHits   map[string]uint64
	CacheMisses map[string]uint64
	// UpdateRates[table] is the observed entry-update rate (ops/second)
	// from control-plane monitoring (§4: "Pipeleon determines the entry
	// update rate of each table by monitoring its invocation of the entry
	// update APIs").
	UpdateRates map[string]float64
	// KeyCardinality[table] is the approximate number of distinct key
	// values observed at the table. The cache-planning heuristic uses it
	// to size the cross-product working set of a candidate flow cache
	// (§3.2.2: "n header fields could produce up to S1·S2...·Sn cache
	// entries").
	KeyCardinality map[string]uint64
	// FlowCardinality is the approximate number of distinct flows
	// observed. Any header-keyed cache's working set is bounded by it —
	// a cache key is a function of the flow — which is what makes wide
	// caches viable under high flow locality despite the field
	// cross-product.
	FlowCardinality uint64
	// SampleRate is the fraction of packets that updated counters
	// (1 = every packet, 1.0/1024 = the paper's sampled mode). Counter
	// values are already scaled back up by the collector; SampleRate is
	// recorded for reporting.
	SampleRate float64
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{
		ActionCounts:   map[string]map[string]uint64{},
		BranchCounts:   map[string][2]uint64{},
		CacheHits:      map[string]uint64{},
		CacheMisses:    map[string]uint64{},
		UpdateRates:    map[string]float64{},
		KeyCardinality: map[string]uint64{},
		SampleRate:     1,
	}
}

// TableTotal returns the total packets observed at a table.
func (p *Profile) TableTotal(table string) uint64 {
	var total uint64
	for _, c := range p.ActionCounts[table] {
		total += c
	}
	return total
}

// ActionProb returns P(a) for each action of the table (Equation 4b).
// With no observations it falls back to uniform over the table's actions.
func (p *Profile) ActionProb(t *p4ir.Table) map[string]float64 {
	out := make(map[string]float64, len(t.Actions))
	total := p.TableTotal(t.Name)
	if total == 0 {
		if len(t.Actions) == 0 {
			return out
		}
		u := 1 / float64(len(t.Actions))
		for _, a := range t.Actions {
			out[a.Name] = u
		}
		return out
	}
	counts := p.ActionCounts[t.Name]
	for _, a := range t.Actions {
		out[a.Name] = float64(counts[a.Name]) / float64(total)
	}
	return out
}

// BranchProb returns P(true) for a conditional. With no observations it
// returns 0.5.
func (p *Profile) BranchProb(cond string) float64 {
	c := p.BranchCounts[cond]
	total := c[0] + c[1]
	if total == 0 {
		return 0.5
	}
	return float64(c[0]) / float64(total)
}

// DropProb returns the fraction of the table's traffic that executes a
// dropping action — the "packet dropping rate" that drives table
// reordering (§3.2.1).
func (p *Profile) DropProb(t *p4ir.Table) float64 {
	probs := p.ActionProb(t)
	var drop float64
	for _, a := range t.Actions {
		if a.Drops() {
			drop += probs[a.Name]
		}
	}
	return drop
}

// CacheHitRate returns the observed hit rate for a cache table, and whether
// any observations exist.
func (p *Profile) CacheHitRate(cache string) (float64, bool) {
	h, m := p.CacheHits[cache], p.CacheMisses[cache]
	if h+m == 0 {
		return 0, false
	}
	return float64(h) / float64(h+m), true
}

// UpdateRate returns the entry-update rate for a table (0 if unobserved).
func (p *Profile) UpdateRate(table string) float64 { return p.UpdateRates[table] }

// Cardinality returns the approximate distinct-key count for a table, or
// def when unobserved.
func (p *Profile) Cardinality(table string, def uint64) uint64 {
	if c, ok := p.KeyCardinality[table]; ok && c > 0 {
		return c
	}
	return def
}

// ReachProbs computes, for every node of the program, the probability that
// a packet reaches it, by propagating edge probabilities from the root in
// topological order. Dropping actions terminate paths, so a table's
// outgoing mass is 1 minus its drop probability, split per ActionNext for
// switch-case tables.
//
// This is the P(G') of §4.1.2 ("the probability that a packet can reach
// the pipelet ... the sum of probabilities for all reachable paths from
// the graph root to the pipelet") computed without path enumeration.
func (p *Profile) ReachProbs(prog *p4ir.Program) map[string]float64 {
	reach := map[string]float64{}
	order, err := prog.TopoOrder()
	if err != nil {
		return reach
	}
	if prog.Root != "" {
		reach[prog.Root] = 1
	}
	for _, name := range order {
		mass := reach[name]
		if mass == 0 {
			continue
		}
		if t, c := prog.Node(name); t != nil {
			probs := p.ActionProb(t)
			if t.IsSwitchCase() {
				for _, a := range t.Actions {
					if a.Drops() {
						continue
					}
					nxt := t.NextFor(a.Name)
					if nxt != "" {
						reach[nxt] += mass * probs[a.Name]
					}
				}
			} else if t.BaseNext != "" {
				reach[t.BaseNext] += mass * (1 - p.DropProb(t))
			}
		} else if c != nil {
			pt := p.BranchProb(name)
			if c.TrueNext != "" {
				reach[c.TrueNext] += mass * pt
			}
			if c.FalseNext != "" {
				reach[c.FalseNext] += mass * (1 - pt)
			}
		}
	}
	return reach
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	out := New()
	out.SampleRate = p.SampleRate
	for t, m := range p.ActionCounts {
		nm := make(map[string]uint64, len(m))
		for a, c := range m {
			nm[a] = c
		}
		out.ActionCounts[t] = nm
	}
	for c, v := range p.BranchCounts {
		out.BranchCounts[c] = v
	}
	for k, v := range p.CacheHits {
		out.CacheHits[k] = v
	}
	for k, v := range p.CacheMisses {
		out.CacheMisses[k] = v
	}
	for k, v := range p.UpdateRates {
		out.UpdateRates[k] = v
	}
	for k, v := range p.KeyCardinality {
		out.KeyCardinality[k] = v
	}
	out.FlowCardinality = p.FlowCardinality
	return out
}

// ActionSite names one (table, action) counter slot in a Layout.
type ActionSite struct {
	Table  string
	Action string
}

// Layout enumerates every instrumentation site of a compiled program so
// the hot path can address counters by integer index instead of by string
// key. The emulator builds one Layout per execution plan and binds it with
// Collector.Bind; slot i of each slice is the site the plan's node
// references by that index.
type Layout struct {
	// Actions lists (table, action) pairs; one counter per pair.
	Actions []ActionSite
	// Branches lists conditional names; two counters per site (true/false).
	Branches []string
	// Caches lists cache table names; two counters per site (hit/miss).
	Caches []string
	// Tables lists tables with distinct-key tracking; one key set per site.
	Tables []string
}

// Shard is one core's lock-free counter bank for a bound Layout. Counters
// are atomic so any goroutine may increment any shard, but the intended
// pattern is one shard per processing context: increments are then
// uncontended and scale linearly with cores. Key/flow sets are the only
// mutex-guarded state, and they are touched at most once per sampled
// packet. Counts are merged back into the owning Collector lazily, on
// Snapshot/Reset/Bind — the hot path never takes the Collector's mutex.
type Shard struct {
	every *atomic.Uint64 // shared sampling divisor (the Collector's)
	tick  *atomic.Uint64 // shared sampling wheel (the Collector's)

	actions  []atomic.Uint64 // one per Layout.Actions slot
	branches []atomic.Uint64 // two per Layout.Branches slot: [2i]=true, [2i+1]=false
	caches   []atomic.Uint64 // two per Layout.Caches slot: [2i]=hit, [2i+1]=miss

	mu    sync.Mutex
	keys  []map[uint64]struct{} // one per Layout.Tables slot, lazily allocated
	flows map[uint64]struct{}
}

// Sampled reports whether this packet should update counters, advancing
// the collector-wide sampling wheel. The wheel is shared across shards so
// exactly 1 in `every` packets is sampled regardless of how packets were
// spread over shards; at every == 1 (record-all) the shared counter is
// never touched and the fast path stays contention-free. With sampling
// enabled (every > 1) which packets are selected depends on goroutine
// interleaving, so serial and parallel runs agree exactly only at
// every == 1.
func (s *Shard) Sampled() bool {
	e := s.every.Load()
	if e <= 1 {
		return true
	}
	return s.tick.Add(1)%e == 0
}

// IncAction counts one packet executing the action at the given slot.
func (s *Shard) IncAction(slot int) { s.actions[slot].Add(1) }

// IncBranch counts one conditional outcome at the given slot.
func (s *Shard) IncBranch(slot int, taken bool) {
	i := 2 * slot
	if !taken {
		i++
	}
	s.branches[i].Add(1)
}

// IncCache counts a cache hit or miss at the given slot.
func (s *Shard) IncCache(slot int, hit bool) {
	i := 2 * slot
	if !hit {
		i++
	}
	s.caches[i].Add(1)
}

// AddKey notes a distinct folded key value at the given table slot.
func (s *Shard) AddKey(slot int, key uint64) {
	s.mu.Lock()
	set := s.keys[slot]
	if set == nil {
		set = map[uint64]struct{}{}
		s.keys[slot] = set
	}
	if len(set) < keyCardCap {
		set[key] = struct{}{}
	}
	s.mu.Unlock()
}

// AddFlow notes a distinct flow key.
func (s *Shard) AddFlow(key uint64) {
	s.mu.Lock()
	if s.flows == nil {
		s.flows = map[uint64]struct{}{}
	}
	if len(s.flows) < keyCardCap {
		s.flows[key] = struct{}{}
	}
	s.mu.Unlock()
}

func (s *Shard) zeroLocked() {
	for i := range s.actions {
		s.actions[i].Store(0)
	}
	for i := range s.branches {
		s.branches[i].Store(0)
	}
	for i := range s.caches {
		s.caches[i].Store(0)
	}
	s.mu.Lock()
	for i := range s.keys {
		s.keys[i] = nil
	}
	s.flows = nil
	s.mu.Unlock()
}

// Collector is the concurrent write side of profiling. The emulator's
// cores call Record* on the hot path (legacy string-keyed API) or, after
// Bind, increment per-shard integer-indexed counters; the Pipeleon
// runtime calls Snapshot on every optimization window.
type Collector struct {
	mu sync.Mutex
	p  *Profile
	// every records 1-in-N sampling (1 = record all packets); counts are
	// scaled by N at snapshot time so probabilities are unbiased.
	every atomic.Uint64
	tick  atomic.Uint64
	// keys tracks distinct key values per table, capped at keyCardCap
	// entries each to bound memory.
	keys map[string]map[uint64]struct{}
	// flows tracks distinct flow keys, capped like keys.
	flows map[uint64]struct{}
	// layout/shards is the currently bound integer-indexed counter bank
	// (nil until Bind). Snapshot merges shards through the layout.
	layout *Layout
	shards []*Shard
	// unionScratch is Snapshot's reusable dedup buffer for the per-table
	// and per-flow shard unions. Only its size is ever read, so one
	// cleared map serves every union in turn; pooling it keeps repeated
	// snapshots (one per profiling window) from reallocating a map per
	// table. Guarded by mu like everything else.
	unionScratch map[uint64]struct{}
}

// keyCardCap bounds the per-table distinct-key tracking set. Beyond the
// cap the cardinality saturates, which is fine: the cache planner only
// needs to know "small" vs "much larger than any cache budget".
const keyCardCap = 1 << 16

// NewCollector returns a collector recording every packet.
func NewCollector() *Collector {
	c := &Collector{p: New(), keys: map[string]map[uint64]struct{}{}}
	c.every.Store(1)
	return c
}

// SetSampling makes the collector record only one in every n packets
// (n >= 1). The paper samples 1/1024 of traffic to cut profiling overhead
// to ~5% on Agilio CX (§5.4.1); "sampling a small fraction of traffic with
// the same sampling rate to update the counter will not alter the result".
func (c *Collector) SetSampling(n uint64) {
	if n == 0 {
		n = 1
	}
	c.mu.Lock()
	c.every.Store(n)
	c.p.SampleRate = 1 / float64(n)
	c.mu.Unlock()
}

// Sampled reports whether this packet should update counters, advancing
// the sampling wheel. Callers use it once per packet.
func (c *Collector) Sampled() bool {
	e := c.every.Load()
	if e <= 1 {
		return true
	}
	return c.tick.Add(1)%e == 0
}

// Bind installs a Layout and allocates n per-core shards for it,
// returning them for the emulator to hand out to processing contexts.
// Counts accumulated under a previous binding are folded into the
// collector first, so rebinding on a program swap does not lose the
// current profiling window. The returned shards stay valid until the next
// Bind; Reset zeroes them in place rather than replacing them.
func (c *Collector) Bind(l *Layout, n int) []*Shard {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.foldShardsLocked()
	c.layout = l
	c.shards = make([]*Shard, n)
	for i := range c.shards {
		c.shards[i] = &Shard{
			every:    &c.every,
			tick:     &c.tick,
			actions:  make([]atomic.Uint64, len(l.Actions)),
			branches: make([]atomic.Uint64, 2*len(l.Branches)),
			caches:   make([]atomic.Uint64, 2*len(l.Caches)),
			keys:     make([]map[uint64]struct{}, len(l.Tables)),
		}
	}
	return c.shards
}

// foldShardsLocked drains every shard's counters into the string-keyed
// profile and zeroes the shards, preserving window totals across a Bind.
func (c *Collector) foldShardsLocked() {
	l := c.layout
	if l == nil {
		return
	}
	for _, s := range c.shards {
		for i := range l.Actions {
			if n := s.actions[i].Load(); n > 0 {
				site := l.Actions[i]
				m := c.p.ActionCounts[site.Table]
				if m == nil {
					m = map[string]uint64{}
					c.p.ActionCounts[site.Table] = m
				}
				m[site.Action] += n
			}
		}
		for i, cond := range l.Branches {
			t, f := s.branches[2*i].Load(), s.branches[2*i+1].Load()
			if t+f > 0 {
				v := c.p.BranchCounts[cond]
				v[0] += t
				v[1] += f
				c.p.BranchCounts[cond] = v
			}
		}
		for i, cache := range l.Caches {
			if h := s.caches[2*i].Load(); h > 0 {
				c.p.CacheHits[cache] += h
			}
			if m := s.caches[2*i+1].Load(); m > 0 {
				c.p.CacheMisses[cache] += m
			}
		}
		s.mu.Lock()
		for i, set := range s.keys {
			if len(set) == 0 {
				continue
			}
			dst := c.keys[l.Tables[i]]
			if dst == nil {
				dst = map[uint64]struct{}{}
				c.keys[l.Tables[i]] = dst
			}
			for k := range set {
				if len(dst) >= keyCardCap {
					break
				}
				dst[k] = struct{}{}
			}
		}
		for k := range s.flows {
			if c.flows == nil {
				c.flows = map[uint64]struct{}{}
			}
			if len(c.flows) >= keyCardCap {
				break
			}
			c.flows[k] = struct{}{}
		}
		s.mu.Unlock()
		s.zeroLocked()
	}
}

// RecordAction counts one packet executing table/action.
func (c *Collector) RecordAction(table, action string) {
	c.mu.Lock()
	m := c.p.ActionCounts[table]
	if m == nil {
		m = map[string]uint64{}
		c.p.ActionCounts[table] = m
	}
	m[action]++
	c.mu.Unlock()
}

// RecordBranch counts one conditional outcome.
func (c *Collector) RecordBranch(cond string, taken bool) {
	c.mu.Lock()
	v := c.p.BranchCounts[cond]
	if taken {
		v[0]++
	} else {
		v[1]++
	}
	c.p.BranchCounts[cond] = v
	c.mu.Unlock()
}

// RecordCache counts a cache hit or miss.
func (c *Collector) RecordCache(cache string, hit bool) {
	c.mu.Lock()
	if hit {
		c.p.CacheHits[cache]++
	} else {
		c.p.CacheMisses[cache]++
	}
	c.mu.Unlock()
}

// RecordFlow notes a distinct flow (pre-folded to uint64). Flow
// cardinality bounds every cache working set.
func (c *Collector) RecordFlow(key uint64) {
	c.mu.Lock()
	if c.flows == nil {
		c.flows = map[uint64]struct{}{}
	}
	if len(c.flows) < keyCardCap {
		c.flows[key] = struct{}{}
	}
	c.mu.Unlock()
}

// RecordKey notes a distinct key value observed at a table. The key should
// already be hashed/folded to a uint64 by the caller (the emulator folds
// the concatenated match-key bytes).
func (c *Collector) RecordKey(table string, key uint64) {
	c.mu.Lock()
	set := c.keys[table]
	if set == nil {
		set = map[uint64]struct{}{}
		c.keys[table] = set
	}
	if len(set) < keyCardCap {
		set[key] = struct{}{}
	}
	c.mu.Unlock()
}

// ObserveUpdateRate records the entry-update rate for a table.
func (c *Collector) ObserveUpdateRate(table string, opsPerSec float64) {
	c.mu.Lock()
	c.p.UpdateRates[table] = opsPerSec
	c.mu.Unlock()
}

// Snapshot returns an immutable copy of the current profile with counter
// values scaled by the sampling factor. Live shard counters are merged in
// non-destructively, so processing may continue concurrently.
func (c *Collector) Snapshot() *Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.p.Clone()
	if l := c.layout; l != nil {
		for _, s := range c.shards {
			for i := range l.Actions {
				if n := s.actions[i].Load(); n > 0 {
					site := l.Actions[i]
					m := out.ActionCounts[site.Table]
					if m == nil {
						m = map[string]uint64{}
						out.ActionCounts[site.Table] = m
					}
					m[site.Action] += n
				}
			}
			for i, cond := range l.Branches {
				t, f := s.branches[2*i].Load(), s.branches[2*i+1].Load()
				if t+f > 0 {
					v := out.BranchCounts[cond]
					v[0] += t
					v[1] += f
					out.BranchCounts[cond] = v
				}
			}
			for i, cache := range l.Caches {
				if h := s.caches[2*i].Load(); h > 0 {
					out.CacheHits[cache] += h
				}
				if m := s.caches[2*i+1].Load(); m > 0 {
					out.CacheMisses[cache] += m
				}
			}
		}
	}
	for table, set := range c.keys {
		out.KeyCardinality[table] = uint64(len(set))
	}
	out.FlowCardinality = uint64(len(c.flows))
	if l := c.layout; l != nil {
		// Distinct-key and flow counts must dedupe across shards and the
		// legacy sets, so build unions (only for slots with shard data).
		// The union buffer is pooled on the collector: only its final size
		// is read, so each union clears and refills the same map instead
		// of allocating per table per snapshot.
		if c.unionScratch == nil {
			c.unionScratch = map[uint64]struct{}{}
		}
		u := c.unionScratch
		for ti, table := range l.Tables {
			seeded := false
			for _, s := range c.shards {
				s.mu.Lock()
				set := s.keys[ti]
				if len(set) > 0 {
					if !seeded {
						seeded = true
						clear(u)
						for k := range c.keys[table] {
							u[k] = struct{}{}
						}
					}
					for k := range set {
						if len(u) >= keyCardCap {
							break
						}
						u[k] = struct{}{}
					}
				}
				s.mu.Unlock()
			}
			if seeded {
				out.KeyCardinality[table] = uint64(len(u))
			}
		}
		seeded := false
		for _, s := range c.shards {
			s.mu.Lock()
			if len(s.flows) > 0 {
				if !seeded {
					seeded = true
					clear(u)
					for k := range c.flows {
						u[k] = struct{}{}
					}
				}
				for k := range s.flows {
					if len(u) >= keyCardCap {
						break
					}
					u[k] = struct{}{}
				}
			}
			s.mu.Unlock()
		}
		if seeded {
			out.FlowCardinality = uint64(len(u))
		}
	}
	if every := c.every.Load(); every > 1 {
		for _, m := range out.ActionCounts {
			for a := range m {
				m[a] *= every
			}
		}
		for cond, v := range out.BranchCounts {
			v[0] *= every
			v[1] *= every
			out.BranchCounts[cond] = v
		}
		for k := range out.CacheHits {
			out.CacheHits[k] *= every
		}
		for k := range out.CacheMisses {
			out.CacheMisses[k] *= every
		}
	}
	return out
}

// Reset clears all counters (used at the start of each profiling window)
// while preserving the sampling configuration and the bound shard set:
// shard counter banks are zeroed in place, so execution plans holding
// shard pointers keep recording into the new window.
func (c *Collector) Reset() {
	c.mu.Lock()
	rate := c.p.SampleRate
	c.p = New()
	c.p.SampleRate = rate
	c.keys = map[string]map[uint64]struct{}{}
	c.flows = nil
	for _, s := range c.shards {
		s.zeroLocked()
	}
	c.mu.Unlock()
}

// CounterUpdatesPerPacket returns how many counter increments one packet
// traversing the given path (node names) costs under this instrumentation:
// one per conditional branch plus one per table action executed (§5.4.1).
func CounterUpdatesPerPacket(prog *p4ir.Program, path []string) int {
	n := 0
	for _, name := range path {
		if t, c := prog.Node(name); t != nil {
			_ = t
			n++ // one action counter per table hit
		} else if c != nil {
			n++ // one branch counter
		}
	}
	return n
}
