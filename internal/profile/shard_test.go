package profile

import (
	"reflect"
	"sync"
	"testing"
)

func testLayout() *Layout {
	return &Layout{
		Actions: []ActionSite{
			{Table: "acl", Action: "allow"},
			{Table: "acl", Action: "drop_packet"},
			{Table: "fwd", Action: "set_port"},
		},
		Branches: []string{"is_tcp"},
		Caches:   []string{"fwd_cache"},
		Tables:   []string{"acl", "fwd"},
	}
}

// The sharded fast path and the legacy string-keyed Record* API are two
// write paths into the same profile: driving them with identical events
// must yield identical snapshots.
func TestShardsMatchLegacyRecordAPI(t *testing.T) {
	sharded := NewCollector()
	legacy := NewCollector()
	shards := sharded.Bind(testLayout(), 4)

	for i := 0; i < 1000; i++ {
		s := shards[i%len(shards)]
		if !s.Sampled() {
			continue
		}
		s.IncAction(i % 3)
		s.IncBranch(0, i%2 == 0)
		s.IncCache(0, i%5 != 0)
		s.AddKey(i%2, uint64(i%37))
		s.AddFlow(uint64(i % 53))

		switch i % 3 {
		case 0:
			legacy.RecordAction("acl", "allow")
		case 1:
			legacy.RecordAction("acl", "drop_packet")
		case 2:
			legacy.RecordAction("fwd", "set_port")
		}
		legacy.RecordBranch("is_tcp", i%2 == 0)
		legacy.RecordCache("fwd_cache", i%5 != 0)
		if i%2 == 0 {
			legacy.RecordKey("acl", uint64(i%37))
		} else {
			legacy.RecordKey("fwd", uint64(i%37))
		}
		legacy.RecordFlow(uint64(i % 53))
	}

	if got, want := sharded.Snapshot(), legacy.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("sharded snapshot differs from legacy:\nsharded: %+v\nlegacy:  %+v", got, want)
	}
}

// Snapshot must not consume shard state: two consecutive snapshots with no
// traffic in between are identical, and counts keep accumulating after.
func TestShardSnapshotNonDestructive(t *testing.T) {
	c := NewCollector()
	shards := c.Bind(testLayout(), 2)
	for i := 0; i < 100; i++ {
		shards[i%2].IncAction(0)
	}
	a := c.Snapshot()
	b := c.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Error("back-to-back snapshots differ")
	}
	shards[0].IncAction(0)
	if got := c.Snapshot().ActionCounts["acl"]["allow"]; got != 101 {
		t.Errorf("post-snapshot increment lost: %d != 101", got)
	}
}

// Rebinding (program hot-swap) must fold outstanding shard counts into
// the carry profile rather than dropping them.
func TestBindFoldsOldShards(t *testing.T) {
	c := NewCollector()
	shards := c.Bind(testLayout(), 2)
	for i := 0; i < 40; i++ {
		shards[i%2].IncAction(1)
	}
	shards2 := c.Bind(testLayout(), 8)
	for i := 0; i < 10; i++ {
		shards2[i%8].IncAction(1)
	}
	if got := c.Snapshot().ActionCounts["acl"]["drop_packet"]; got != 50 {
		t.Errorf("rebind lost counts: %d != 50", got)
	}
}

// Concurrent increments across goroutines sharing shards must be exact —
// this is the lock-free claim, run under -race by make verify.
func TestShardConcurrentIncrementsExact(t *testing.T) {
	c := NewCollector()
	shards := c.Bind(testLayout(), 4)
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := shards[g%len(shards)]
			for i := 0; i < per; i++ {
				s.IncAction(2)
				s.IncBranch(0, i%2 == 0)
				s.IncCache(0, i%3 == 0)
				s.AddFlow(uint64(i % 97))
			}
		}(g)
	}
	wg.Wait()
	p := c.Snapshot()
	if got := p.ActionCounts["fwd"]["set_port"]; got != goroutines*per {
		t.Errorf("action count %d != %d", got, goroutines*per)
	}
	br := p.BranchCounts["is_tcp"]
	if br[0]+br[1] != goroutines*per {
		t.Errorf("branch counts %v sum != %d", br, goroutines*per)
	}
	if p.CacheHits["fwd_cache"]+p.CacheMisses["fwd_cache"] != goroutines*per {
		t.Error("cache counts lost increments")
	}
	if p.FlowCardinality != 97 {
		t.Errorf("flow cardinality %d != 97", p.FlowCardinality)
	}
}
