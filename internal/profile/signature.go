package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"

	"pipeleon/internal/p4ir"
)

// Signature quantizes a runtime profile into a similarity key: per-table
// traffic shares bucketed into sixteenths, per-table drop probability
// bucketed into tenths, and entry-update rates bucketed by decade.
// Profiles that would drive the §3 heuristics to the same choices land in
// the same bucket string; a real traffic shift (a table going cold, a drop
// rate flipping, an update storm) changes the signature.
//
// This is the one shared definition of "similar enough traffic" used by
// the fleet's plan cache, the optimizer's warm search sessions, and the
// core runtime's change detection. Quantization keeps the key stable under
// measurement noise while still separating profiles that deserve a fresh
// search.
func Signature(prog *p4ir.Program, prof *Profile) string {
	if prog == nil || prof == nil {
		return "empty"
	}
	names := make([]string, 0, len(prog.Tables))
	for name := range prog.Tables {
		names = append(names, name)
	}
	sort.Strings(names)

	var total uint64
	for _, name := range names {
		total += prof.TableTotal(name)
	}
	var b strings.Builder
	for _, name := range names {
		t := prog.Tables[name]
		var share, drop float64
		if total > 0 {
			share = float64(prof.TableTotal(name)) / float64(total)
			drop = prof.DropProb(t)
		}
		upd := prof.UpdateRate(name)
		updBucket := 0
		if upd >= 1 {
			updBucket = 1 + int(math.Log10(upd))
		}
		fmt.Fprintf(&b, "%s:%d.%d.%d;", name,
			int(share*16+0.5), int(drop*10+0.5), updBucket)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:6])
}
