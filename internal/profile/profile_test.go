package profile

import (
	"math"
	"sync"
	"testing"

	"pipeleon/internal/p4ir"
)

func linearProg(t *testing.T) *p4ir.Program {
	t.Helper()
	prog, err := p4ir.ChainTables("lin", []p4ir.TableSpec{
		{Name: "acl", Keys: []p4ir.Key{{Field: "ipv4.srcAddr", Kind: p4ir.MatchExact}},
			Actions: []*p4ir.Action{p4ir.DropAction(), p4ir.NoopAction("allow")}},
		{Name: "route", Keys: []p4ir.Key{{Field: "ipv4.dstAddr", Kind: p4ir.MatchLPM}},
			Actions: []*p4ir.Action{p4ir.ForwardAction("fwd")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func branchProg(t *testing.T) *p4ir.Program {
	t.Helper()
	return p4ir.NewBuilder("br").
		Cond("c", "ipv4.isValid()", "A", "B").
		Table(p4ir.TableSpec{Name: "A", Actions: []*p4ir.Action{p4ir.NoopAction("n")}, Next: "C"}).
		Table(p4ir.TableSpec{Name: "B", Actions: []*p4ir.Action{p4ir.NoopAction("n")}, Next: "C"}).
		Table(p4ir.TableSpec{Name: "C", Actions: []*p4ir.Action{p4ir.NoopAction("n")}}).
		Root("c").
		MustBuild()
}

func TestActionProbAndDropProb(t *testing.T) {
	prog := linearProg(t)
	col := NewCollector()
	for i := 0; i < 30; i++ {
		col.RecordAction("acl", "drop_packet")
	}
	for i := 0; i < 70; i++ {
		col.RecordAction("acl", "allow")
	}
	p := col.Snapshot()
	probs := p.ActionProb(prog.Tables["acl"])
	if math.Abs(probs["drop_packet"]-0.3) > 1e-9 {
		t.Errorf("P(drop) = %v, want 0.3", probs["drop_packet"])
	}
	if math.Abs(p.DropProb(prog.Tables["acl"])-0.3) > 1e-9 {
		t.Errorf("DropProb = %v, want 0.3", p.DropProb(prog.Tables["acl"]))
	}
}

func TestActionProbUniformFallback(t *testing.T) {
	prog := linearProg(t)
	p := New()
	probs := p.ActionProb(prog.Tables["acl"])
	if math.Abs(probs["drop_packet"]-0.5) > 1e-9 || math.Abs(probs["allow"]-0.5) > 1e-9 {
		t.Errorf("uniform fallback = %v", probs)
	}
}

func TestBranchProb(t *testing.T) {
	col := NewCollector()
	for i := 0; i < 80; i++ {
		col.RecordBranch("c", true)
	}
	for i := 0; i < 20; i++ {
		col.RecordBranch("c", false)
	}
	p := col.Snapshot()
	if math.Abs(p.BranchProb("c")-0.8) > 1e-9 {
		t.Errorf("BranchProb = %v, want 0.8", p.BranchProb("c"))
	}
	if p.BranchProb("unknown") != 0.5 {
		t.Errorf("unknown branch should default to 0.5")
	}
}

func TestReachProbsLinearWithDrop(t *testing.T) {
	prog := linearProg(t)
	col := NewCollector()
	for i := 0; i < 40; i++ {
		col.RecordAction("acl", "drop_packet")
	}
	for i := 0; i < 60; i++ {
		col.RecordAction("acl", "allow")
	}
	reach := col.Snapshot().ReachProbs(prog)
	if math.Abs(reach["acl"]-1) > 1e-9 {
		t.Errorf("reach(acl) = %v, want 1", reach["acl"])
	}
	if math.Abs(reach["route"]-0.6) > 1e-9 {
		t.Errorf("reach(route) = %v, want 0.6 (40%% dropped)", reach["route"])
	}
}

func TestReachProbsBranches(t *testing.T) {
	prog := branchProg(t)
	col := NewCollector()
	for i := 0; i < 70; i++ {
		col.RecordBranch("c", true)
	}
	for i := 0; i < 30; i++ {
		col.RecordBranch("c", false)
	}
	reach := col.Snapshot().ReachProbs(prog)
	if math.Abs(reach["A"]-0.7) > 1e-9 || math.Abs(reach["B"]-0.3) > 1e-9 {
		t.Errorf("reach A=%v B=%v, want 0.7/0.3", reach["A"], reach["B"])
	}
	if math.Abs(reach["C"]-1.0) > 1e-9 {
		t.Errorf("reach(C) = %v, want 1 (paths rejoin)", reach["C"])
	}
}

func TestReachProbsSwitchCase(t *testing.T) {
	prog := p4ir.NewBuilder("sc").
		Table(p4ir.TableSpec{
			Name: "classify",
			Actions: []*p4ir.Action{
				p4ir.NoopAction("to_a"),
				p4ir.NoopAction("to_b"),
				p4ir.DropAction(),
			},
			ActionNext: map[string]string{"to_a": "A", "to_b": "B"},
		}).
		Table(p4ir.TableSpec{Name: "A", Actions: []*p4ir.Action{p4ir.NoopAction("n")}}).
		Table(p4ir.TableSpec{Name: "B", Actions: []*p4ir.Action{p4ir.NoopAction("n")}}).
		Root("classify").
		MustBuild()
	col := NewCollector()
	for i := 0; i < 50; i++ {
		col.RecordAction("classify", "to_a")
	}
	for i := 0; i < 30; i++ {
		col.RecordAction("classify", "to_b")
	}
	for i := 0; i < 20; i++ {
		col.RecordAction("classify", "drop_packet")
	}
	reach := col.Snapshot().ReachProbs(prog)
	if math.Abs(reach["A"]-0.5) > 1e-9 || math.Abs(reach["B"]-0.3) > 1e-9 {
		t.Errorf("reach A=%v B=%v, want 0.5/0.3", reach["A"], reach["B"])
	}
}

func TestSamplingScalesCounts(t *testing.T) {
	col := NewCollector()
	col.SetSampling(4)
	recorded := 0
	for i := 0; i < 1000; i++ {
		if col.Sampled() {
			col.RecordAction("t", "a")
			recorded++
		}
	}
	if recorded != 250 {
		t.Errorf("recorded %d of 1000 with 1/4 sampling, want 250", recorded)
	}
	p := col.Snapshot()
	if got := p.TableTotal("t"); got != 1000 {
		t.Errorf("scaled total = %d, want 1000", got)
	}
	if math.Abs(p.SampleRate-0.25) > 1e-9 {
		t.Errorf("SampleRate = %v, want 0.25", p.SampleRate)
	}
}

func TestCacheHitRate(t *testing.T) {
	col := NewCollector()
	for i := 0; i < 90; i++ {
		col.RecordCache("cache1", true)
	}
	for i := 0; i < 10; i++ {
		col.RecordCache("cache1", false)
	}
	p := col.Snapshot()
	rate, ok := p.CacheHitRate("cache1")
	if !ok || math.Abs(rate-0.9) > 1e-9 {
		t.Errorf("hit rate = %v ok=%v, want 0.9 true", rate, ok)
	}
	if _, ok := p.CacheHitRate("nothere"); ok {
		t.Error("unobserved cache should report ok=false")
	}
}

func TestCollectorConcurrency(t *testing.T) {
	col := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				col.RecordAction("t", "a")
				col.RecordBranch("c", i%2 == 0)
				col.RecordCache("k", i%3 == 0)
			}
		}()
	}
	wg.Wait()
	p := col.Snapshot()
	if got := p.TableTotal("t"); got != 8000 {
		t.Errorf("concurrent total = %d, want 8000", got)
	}
	b := p.BranchCounts["c"]
	if b[0]+b[1] != 8000 {
		t.Errorf("branch total = %d, want 8000", b[0]+b[1])
	}
}

func TestResetPreservesSampling(t *testing.T) {
	col := NewCollector()
	col.SetSampling(8)
	col.RecordAction("t", "a")
	col.Reset()
	p := col.Snapshot()
	if p.TableTotal("t") != 0 {
		t.Error("Reset should clear counters")
	}
	if math.Abs(p.SampleRate-0.125) > 1e-9 {
		t.Errorf("Reset lost sampling config: %v", p.SampleRate)
	}
}

func TestUpdateRates(t *testing.T) {
	col := NewCollector()
	col.ObserveUpdateRate("lb", 1500)
	p := col.Snapshot()
	if p.UpdateRate("lb") != 1500 {
		t.Errorf("UpdateRate = %v, want 1500", p.UpdateRate("lb"))
	}
	if p.UpdateRate("ghost") != 0 {
		t.Error("unknown table should have zero update rate")
	}
}

func TestCloneIndependence(t *testing.T) {
	col := NewCollector()
	col.RecordAction("t", "a")
	p1 := col.Snapshot()
	p2 := p1.Clone()
	p2.ActionCounts["t"]["a"] = 999
	if p1.ActionCounts["t"]["a"] != 1 {
		t.Error("Clone shares maps with original")
	}
}

func TestCounterUpdatesPerPacket(t *testing.T) {
	prog := branchProg(t)
	n := CounterUpdatesPerPacket(prog, []string{"c", "A", "C"})
	if n != 3 {
		t.Errorf("CounterUpdatesPerPacket = %d, want 3", n)
	}
}
