package profile

// Sink is the hot path's view of a profiling destination: either a Shard
// (per-packet atomic increments) or a Burst (per-burst local accumulation
// flushed into a Shard). The emulator's plan walker records through this
// interface so the scalar and burst paths share one code path; because
// counter increments are commutative adds and key/flow tracking is
// set-insertion, flushing per burst instead of per packet produces
// bit-identical snapshots.
type Sink interface {
	// Sampled reports whether the current packet updates counters,
	// advancing the collector-wide sampling wheel.
	Sampled() bool
	IncAction(slot int)
	IncBranch(slot int, taken bool)
	IncCache(slot int, hit bool)
	AddKey(slot int, key uint64)
	AddFlow(key uint64)
}

var (
	_ Sink = (*Shard)(nil)
	_ Sink = (*Burst)(nil)
)

type burstKey struct {
	slot int32
	key  uint64
}

// Burst accumulates one burst's worth of profiling updates in plain local
// memory and flushes them into a Shard in a single pass: one atomic add
// per touched counter slot and one mutex acquisition for the key/flow
// sets, instead of per-packet synchronization. A Burst belongs to one
// goroutine; Flush must run before the results of the burst are observed
// through Collector.Snapshot.
type Burst struct {
	shard    *Shard
	actions  []uint64
	branches []uint64
	caches   []uint64
	keys     []burstKey
	flows    []uint64
	dirty    bool
}

// NewBurst returns a burst accumulator bound to the shard.
func (s *Shard) NewBurst() *Burst {
	b := &Burst{}
	b.bind(s)
	return b
}

// Rebind flushes any pending updates and points the burst at a (possibly
// new) shard — used when a program swap rebinds the collector's shard bank
// between bursts.
func (b *Burst) Rebind(s *Shard) {
	if b.shard == s {
		return
	}
	b.Flush()
	b.bind(s)
}

func (b *Burst) bind(s *Shard) {
	b.shard = s
	b.actions = resizeZero(b.actions, len(s.actions))
	b.branches = resizeZero(b.branches, len(s.branches))
	b.caches = resizeZero(b.caches, len(s.caches))
	b.keys = b.keys[:0]
	b.flows = b.flows[:0]
	b.dirty = false
}

func resizeZero(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Sampled delegates to the shard's shared sampling wheel (at sampling=1
// it touches no shared state).
func (b *Burst) Sampled() bool { return b.shard.Sampled() }

// IncAction counts one packet executing the action at the given slot.
func (b *Burst) IncAction(slot int) {
	b.actions[slot]++
	b.dirty = true
}

// IncBranch counts one conditional outcome at the given slot.
func (b *Burst) IncBranch(slot int, taken bool) {
	i := 2 * slot
	if !taken {
		i++
	}
	b.branches[i]++
	b.dirty = true
}

// IncCache counts a cache hit or miss at the given slot.
func (b *Burst) IncCache(slot int, hit bool) {
	i := 2 * slot
	if !hit {
		i++
	}
	b.caches[i]++
	b.dirty = true
}

// AddKey notes a distinct folded key value at the given table slot.
func (b *Burst) AddKey(slot int, key uint64) {
	b.keys = append(b.keys, burstKey{slot: int32(slot), key: key})
	b.dirty = true
}

// AddFlow notes a distinct flow key.
func (b *Burst) AddFlow(key uint64) {
	b.flows = append(b.flows, key)
	b.dirty = true
}

// Flush drains the accumulated updates into the bound shard and resets
// the burst for reuse.
func (b *Burst) Flush() {
	if b == nil || !b.dirty {
		return
	}
	s := b.shard
	for i, v := range b.actions {
		if v > 0 {
			s.actions[i].Add(v)
			b.actions[i] = 0
		}
	}
	for i, v := range b.branches {
		if v > 0 {
			s.branches[i].Add(v)
			b.branches[i] = 0
		}
	}
	for i, v := range b.caches {
		if v > 0 {
			s.caches[i].Add(v)
			b.caches[i] = 0
		}
	}
	if len(b.keys) > 0 || len(b.flows) > 0 {
		s.mu.Lock()
		for _, k := range b.keys {
			set := s.keys[k.slot]
			if set == nil {
				set = map[uint64]struct{}{}
				s.keys[k.slot] = set
			}
			if len(set) < keyCardCap {
				set[k.key] = struct{}{}
			}
		}
		for _, f := range b.flows {
			if s.flows == nil {
				s.flows = map[uint64]struct{}{}
			}
			if len(s.flows) < keyCardCap {
				s.flows[f] = struct{}{}
			}
		}
		s.mu.Unlock()
		b.keys = b.keys[:0]
		b.flows = b.flows[:0]
	}
	b.dirty = false
}
