package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a fake module layout under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLayeringViolation(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/core/bad.go": `package core

import _ "pipeleon/internal/nicsim"
`,
		"internal/core/bad_test.go": `package core

import _ "pipeleon/internal/nicsim"
`,
	})
	vs, err := lintModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1 (test file exempt): %v", len(vs), vs)
	}
	if vs[0].Rule != "layering" || !strings.HasSuffix(vs[0].Pos.Filename, "bad.go") {
		t.Fatalf("unexpected violation: %v", vs[0])
	}
}

func TestDeterminismViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/nicsim/clock.go": `package nicsim

import "time"

func now() time.Time { return time.Now() }
`,
		"internal/nicsim/rng.go": `package nicsim

import "math/rand"

func roll() int { return rand.Int() }
`,
		// Aliased time import must still be caught.
		"internal/nicsim/alias.go": `package nicsim

import clk "time"

func now2() clk.Time { return clk.Now() }
`,
		// A local variable named time is not the package.
		"internal/nicsim/shadow.go": `package nicsim

import "time"

type ticker struct{ Now func() time.Time }

func use(time ticker) { _ = time.Now() }
`,
		// time usage without Now is fine.
		"internal/nicsim/ok.go": `package nicsim

import "time"

func span(a, b time.Time) time.Duration { return b.Sub(a) }
`,
		"internal/nicsim/ok_test.go": `package nicsim

import "time"

var t0 = time.Now()
`,
	})
	vs, err := lintModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(vs), vs)
	}
	byFile := map[string]string{}
	for _, v := range vs {
		if v.Rule != "determinism" {
			t.Errorf("unexpected rule %q: %v", v.Rule, v)
		}
		byFile[filepath.Base(v.Pos.Filename)] = v.Msg
	}
	if !strings.Contains(byFile["clock.go"], "time.Now") {
		t.Errorf("clock.go: %q", byFile["clock.go"])
	}
	if !strings.Contains(byFile["rng.go"], "math/rand") {
		t.Errorf("rng.go: %q", byFile["rng.go"])
	}
	if !strings.Contains(byFile["alias.go"], "time.Now") {
		t.Errorf("alias.go: %q", byFile["alias.go"])
	}
}

func TestTargetRuleOnlyCoversReplayRecordFiles(t *testing.T) {
	root := writeTree(t, map[string]string{
		// local.go may use the wall clock (live device measurements).
		"internal/target/local.go": `package target

import "time"

var t0 = time.Now()
`,
		"internal/target/replay.go": `package target

import "time"

var t1 = time.Now()
`,
	})
	vs, err := lintModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.HasSuffix(vs[0].Pos.Filename, "replay.go") {
		t.Fatalf("got %v, want exactly one violation in replay.go", vs)
	}
}

func TestTierNameViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		// Concrete tier name in opt: violation.
		"internal/opt/bad.go": `package opt

import "pipeleon/internal/costmodel"

var d = costmodel.TierOffPath
`,
		// Aliased import must still be caught.
		"internal/opt/alias.go": `package opt

import cm "pipeleon/internal/costmodel"

var e = cm.TierNICCPU
`,
		// Generic tier iteration is fine.
		"internal/opt/ok.go": `package opt

import "pipeleon/internal/costmodel"

func tiers(pm costmodel.Params) []costmodel.TierID {
	var out []costmodel.TierID
	for t := 0; t < pm.NumTiers(); t++ {
		out = append(out, costmodel.TierID(t))
	}
	return out
}
`,
		// Tests are exempt.
		"internal/opt/bad_test.go": `package opt

import "pipeleon/internal/costmodel"

var f = costmodel.TierASIC
`,
		// Other packages are not covered by the rule.
		"internal/nicsim/free.go": `package nicsim

import "pipeleon/internal/costmodel"

var g = costmodel.TierOffPath
`,
	})
	vs, err := lintModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	byFile := map[string]string{}
	for _, v := range vs {
		if v.Rule != "tier-generic" {
			t.Errorf("unexpected rule %q: %v", v.Rule, v)
		}
		byFile[filepath.Base(v.Pos.Filename)] = v.Msg
	}
	if !strings.Contains(byFile["bad.go"], "costmodel.TierOffPath") {
		t.Errorf("bad.go: %q", byFile["bad.go"])
	}
	if !strings.Contains(byFile["alias.go"], "cm.TierNICCPU") {
		t.Errorf("alias.go: %q", byFile["alias.go"])
	}
}

func TestDiagCodeViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		// PL900 documented + unique: clean. PL901 undocumented. PL902
		// declared twice. Non-const literals and testdata are ignored.
		"internal/analysis/codes.go": `package analysis

const (
	CodeFine  = "PL900"
	CodeNoDoc = "PL901"
	CodeDup   = "PL902"
)
`,
		"internal/other/dup.go": `package other

const CodeAgain = "PL902"
`,
		"internal/other/usage.go": `package other

func use() string { return "PL900" }
`,
		"internal/other/testdata/fake.go": `package fake

const CodeHidden = "PL999"
`,
		"internal/other/codes_test.go": `package other

const CodeTestOnly = "PL998"
`,
		"DESIGN.md": "| `PL900` | warn | a documented code |\n| `PL902` | warn | the duplicated one |\n",
	})
	vs, err := lintModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	for _, v := range vs {
		if v.Rule != "diag-code" {
			t.Errorf("unexpected rule %q: %v", v.Rule, v)
		}
	}
	byCode := map[string]string{}
	for _, v := range vs {
		for _, code := range []string{"PL901", "PL902"} {
			if strings.Contains(v.Msg, code) {
				byCode[code] = v.Msg
			}
		}
	}
	if !strings.Contains(byCode["PL901"], "DESIGN.md") {
		t.Errorf("PL901: %q, want missing-documentation violation", byCode["PL901"])
	}
	if !strings.Contains(byCode["PL902"], "already declared") {
		t.Errorf("PL902: %q, want duplicate-declaration violation", byCode["PL902"])
	}
}

func TestMissingDirsAreNotErrors(t *testing.T) {
	vs, err := lintModule(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("empty module produced violations: %v", vs)
	}
}

// The real repo must be clean — this is the same check `make lint` runs.
func TestRepoIsClean(t *testing.T) {
	vs, err := lintModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("%s", v)
	}
}
