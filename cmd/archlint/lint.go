package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Violation is one architectural rule breach at a source position.
type Violation struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", v.Pos.Filename, v.Pos.Line, v.Rule, v.Msg)
}

// importRule forbids files under Dir (non-test) from importing Path.
type importRule struct {
	Dir  string // module-relative directory, e.g. "internal/core"
	Path string // forbidden import path
	Why  string
}

// determinismRule forbids wall-clock and ambient-randomness use in files
// under Dir whose base name matches Match (empty = all non-test files):
// no time.Now calls and no math/rand imports. These files feed the
// record/replay machinery, where any nondeterminism makes a recorded
// session unreproducible.
type determinismRule struct {
	Dir   string
	Match func(base string) bool
	Why   string
}

var importRules = []importRule{
	{
		Dir:  "internal/core",
		Path: "pipeleon/internal/nicsim",
		Why:  "the runtime must reach devices through internal/target, never the emulator directly",
	},
	{
		Dir:  "internal/fleet",
		Path: "pipeleon/internal/nicsim",
		Why:  "the fleet controller manages devices through internal/target; only binaries may construct emulators",
	},
}

// tierNameRule forbids files under Dir (non-test) from naming concrete
// execution tiers (costmodel.TierASIC / TierNICCPU / TierOffPath).
// Placement and runtime code must iterate tiers generically — 0..NumTiers
// — so adding a fourth tier never requires touching them; only costmodel
// may say what a tier concretely is.
type tierNameRule struct {
	Dir string
	Why string
}

var tierNames = map[string]bool{
	"TierASIC":    true,
	"TierNICCPU":  true,
	"TierOffPath": true,
}

var tierNameRules = []tierNameRule{
	{
		Dir: "internal/opt",
		Why: "the placement search is tier-generic; iterate 0..NumTiers instead",
	},
	{
		Dir: "internal/core",
		Why: "the runtime is tier-generic; iterate 0..NumTiers instead",
	},
}

var determinismRules = []determinismRule{
	{
		Dir: "internal/nicsim",
		Why: "the emulator fast path must be deterministic for record/replay",
	},
	{
		Dir: "internal/target",
		Match: func(base string) bool {
			return strings.Contains(base, "replay") || strings.Contains(base, "record")
		},
		Why: "trace record/replay must be bit-reproducible",
	},
}

// lintModule walks the module rooted at root and returns all violations,
// sorted by position. Test files (_test.go) are always exempt: they may
// construct emulators and use wall-clock timeouts freely.
func lintModule(root string) ([]Violation, error) {
	var out []Violation
	fset := token.NewFileSet()
	for _, r := range importRules {
		vs, err := lintDir(fset, filepath.Join(root, r.Dir), nil, func(f *ast.File) []Violation {
			return checkImports(fset, f, r)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	for _, r := range determinismRules {
		r := r
		vs, err := lintDir(fset, filepath.Join(root, r.Dir), r.Match, func(f *ast.File) []Violation {
			return checkDeterminism(fset, f, r)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	for _, r := range tierNameRules {
		r := r
		vs, err := lintDir(fset, filepath.Join(root, r.Dir), nil, func(f *ast.File) []Violation {
			return checkTierNames(fset, f, r)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	vs, err := lintDiagCodes(fset, root)
	if err != nil {
		return nil, err
	}
	out = append(out, vs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out, nil
}

// lintDir parses every matching non-test .go file under dir (recursively)
// and applies check. A missing directory is not an error: rules describe
// the layout, and a package may legitimately not exist yet.
func lintDir(fset *token.FileSet, dir string, match func(string) bool, check func(*ast.File) []Violation) ([]Violation, error) {
	var out []Violation
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if d == nil { // root does not exist
				return fs.SkipAll
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		base := d.Name()
		if !strings.HasSuffix(base, ".go") || strings.HasSuffix(base, "_test.go") {
			return nil
		}
		if match != nil && !match(base) {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		out = append(out, check(f)...)
		return nil
	})
	return out, err
}

// diagCodeRE matches the stable diagnostic codes the analyzer emits
// (PLxxx structural/symbolic lint, RWxxx rewrite proofs, SExxx semantic
// equivalence). Each code is the contract between the analyzer and
// everything that filters on it (CI, the deploy gate, operators reading
// round reports), so two rules apply module-wide: a code is declared by
// exactly one constant, and every declared code has a row in the root
// DESIGN.md diagnostics table (rendered there as `CODE` in backticks).
var diagCodeRE = regexp.MustCompile(`^(PL|RW|SE)[0-9]{3}$`)

// lintDiagCodes walks every non-test .go file in the module, collects
// constant declarations whose value is a diag-code string literal, and
// reports duplicates and codes missing from DESIGN.md.
func lintDiagCodes(fset *token.FileSet, root string) ([]Violation, error) {
	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	var out []Violation
	firstDecl := map[string]token.Position{}
	// Deterministic order regardless of map/walk quirks: collect decls,
	// then judge them sorted by position.
	type decl struct {
		code string
		pos  token.Position
	}
	var decls []decl
	walkErr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Fixture trees under testdata are not part of the module's
			// code-facing surface.
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != root {
				return fs.SkipDir
			}
			return nil
		}
		base := d.Name()
		if !strings.HasSuffix(base, ".go") || strings.HasSuffix(base, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for _, dcl := range f.Decls {
			gd, ok := dcl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					lit, ok := v.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					code, err := strconv.Unquote(lit.Value)
					if err != nil || !diagCodeRE.MatchString(code) {
						continue
					}
					decls = append(decls, decl{code, fset.Position(lit.Pos())})
				}
			}
		}
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	sort.Slice(decls, func(i, j int) bool {
		if decls[i].pos.Filename != decls[j].pos.Filename {
			return decls[i].pos.Filename < decls[j].pos.Filename
		}
		return decls[i].pos.Line < decls[j].pos.Line
	})
	for _, dc := range decls {
		if prev, dup := firstDecl[dc.code]; dup {
			out = append(out, Violation{
				Pos:  dc.pos,
				Rule: "diag-code",
				Msg: fmt.Sprintf("diagnostic code %s already declared at %s:%d; codes must be unique module-wide",
					dc.code, prev.Filename, prev.Line),
			})
			continue
		}
		firstDecl[dc.code] = dc.pos
		if !strings.Contains(string(design), "`"+dc.code+"`") {
			out = append(out, Violation{
				Pos:  dc.pos,
				Rule: "diag-code",
				Msg:  fmt.Sprintf("diagnostic code %s has no row in DESIGN.md's diagnostics table", dc.code),
			})
		}
	}
	return out, nil
}

func checkImports(fset *token.FileSet, f *ast.File, r importRule) []Violation {
	var out []Violation
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == r.Path {
			out = append(out, Violation{
				Pos:  fset.Position(imp.Pos()),
				Rule: "layering",
				Msg:  fmt.Sprintf("imports %s: %s", path, r.Why),
			})
		}
	}
	return out
}

func checkTierNames(fset *token.FileSet, f *ast.File, r tierNameRule) []Violation {
	var out []Violation
	// Resolve the local name the costmodel package is imported under, so
	// aliased imports are caught and unrelated identifiers are not.
	cmName := ""
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "pipeleon/internal/costmodel" {
			continue
		}
		cmName = "costmodel"
		if imp.Name != nil {
			cmName = imp.Name.Name
		}
	}
	if cmName == "" || cmName == "_" {
		return out
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !tierNames[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == cmName && id.Obj == nil {
			out = append(out, Violation{
				Pos:  fset.Position(sel.Pos()),
				Rule: "tier-generic",
				Msg:  fmt.Sprintf("names concrete tier %s.%s: %s", cmName, sel.Sel.Name, r.Why),
			})
		}
		return true
	})
	return out
}

func checkDeterminism(fset *token.FileSet, f *ast.File, r determinismRule) []Violation {
	var out []Violation
	// The local name the "time" package is imported under (if at all),
	// so aliased imports are still caught and shadowed identifiers named
	// "time" are not.
	timeName := ""
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "math/rand", "math/rand/v2":
			out = append(out, Violation{
				Pos:  fset.Position(imp.Pos()),
				Rule: "determinism",
				Msg:  fmt.Sprintf("imports %s (ambient RNG): %s; use internal/stats.RNG with an explicit seed", path, r.Why),
			})
		case "time":
			timeName = "time"
			if imp.Name != nil {
				timeName = imp.Name.Name
			}
		}
	}
	if timeName == "" || timeName == "_" {
		return out
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName && id.Obj == nil {
			out = append(out, Violation{
				Pos:  fset.Position(sel.Pos()),
				Rule: "determinism",
				Msg:  fmt.Sprintf("calls time.Now: %s; use the virtual clock or a caller-supplied timestamp", r.Why),
			})
		}
		return true
	})
	return out
}
