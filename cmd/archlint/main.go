// Command archlint checks the repo's architectural invariants with
// go/parser + go/ast — cheap structural rules that gofmt and go vet do
// not cover:
//
//   - layering: internal/core must not import internal/nicsim (the
//     runtime reaches devices only through the internal/target
//     abstraction; the emulator is just one backend).
//   - determinism: internal/nicsim fast-path files and internal/target
//     record/replay files must not call time.Now or import math/rand —
//     any ambient wall clock or global RNG would make recorded device
//     sessions unreproducible on replay.
//
// Test files are exempt from every rule. Violations print one per line
// as file:line: [rule] message; the exit status is 1 when any were
// found and 2 on I/O or parse errors.
//
// Usage:
//
//	archlint [module-root]
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	flag.Parse()
	root := "."
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: archlint [module-root]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		root = flag.Arg(0)
	}
	vs, err := lintModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "archlint: %v\n", err)
		os.Exit(2)
	}
	for _, v := range vs {
		fmt.Println(v)
	}
	if len(vs) > 0 {
		fmt.Fprintf(os.Stderr, "archlint: %d violation(s)\n", len(vs))
		os.Exit(1)
	}
}
