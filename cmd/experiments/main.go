// Command experiments regenerates the paper's evaluation figures on the
// software SmartNIC emulator and prints each as a text table.
//
// Usage:
//
//	experiments -list
//	experiments -fig fig9a [-fig fig9c ...]   # specific figures
//	experiments -all [-quick]                 # everything
//	experiments -all -quick -out results.txt  # tee to a file
//
// -quick shrinks sample counts for fast runs; drop it for the full scales
// recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pipeleon/internal/experiments"
	"pipeleon/internal/pprofutil"
)

type figList []string

func (f *figList) String() string { return fmt.Sprint(*f) }
func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure id to run (repeatable); see -list")
	var (
		all     = flag.Bool("all", false, "run every figure")
		quick   = flag.Bool("quick", false, "reduced sample counts")
		list    = flag.Bool("list", false, "list figure ids")
		outPath = flag.String("out", "", "also write results to this file")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopCPU, err := pprofutil.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := pprofutil.WriteHeap(*memProf); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	var runners []experiments.Runner
	if *all {
		runners = experiments.All()
	} else {
		for _, id := range figs {
			r := experiments.Find(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown figure %q (see -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}
	if len(runners) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	opts := experiments.RunOpts{Quick: *quick, Seed: *seed}
	for _, r := range runners {
		start := time.Now()
		res := r.Run(opts)
		res.Render(out)
		fmt.Fprintf(out, "(%s ran in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
