// Command tracegen records golden replay traces: it synthesizes a P4
// program, runs the Pipeleon runtime loop against the emulator behind a
// recording target, and writes the captured trace (with the program
// embedded) to a JSON file. The traces under testdata/traces/ power
// hermetic replay tests — a full runtime round trip with no emulator in
// the test process — and `pipeleon -trace` offline tuning.
//
// Usage:
//
//	tracegen -out testdata/traces/bluefield2.json [-target bluefield2]
//	         [-rounds 3] [-flows 400] [-pps-window 4000] [-seed 7]
//	         [-pipelets 6] [-avglen 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pipeleon/internal/core"
	"pipeleon/internal/costmodel"
	"pipeleon/internal/nicsim"
	"pipeleon/internal/opt"
	"pipeleon/internal/profile"
	"pipeleon/internal/synth"
	"pipeleon/internal/target"
	"pipeleon/internal/trafficgen"
)

func main() {
	var (
		out      = flag.String("out", "", "output trace path (required)")
		model    = flag.String("target", "bluefield2", "bluefield2|agiliocx|emulated")
		rounds   = flag.Int("rounds", 3, "optimization rounds to record")
		flows    = flag.Int("flows", 400, "flows in the synthetic workload")
		perWin   = flag.Int("pps-window", 4000, "packets driven per window")
		seed     = flag.Uint64("seed", 7, "seed for program, traffic, and emulator")
		pipelets = flag.Int("pipelets", 6, "synthesized program pipelet count")
		avgLen   = flag.Float64("avglen", 2, "synthesized mean pipelet length")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	var pm costmodel.Params
	switch *model {
	case "bluefield2":
		pm = costmodel.BlueField2()
	case "agiliocx":
		pm = costmodel.AgilioCX()
	case "emulated":
		pm = costmodel.EmulatedNIC()
	default:
		fatal("unknown target %q", *model)
	}

	prog := synth.Program(synth.ProgramSpec{
		Pipelets: *pipelets,
		AvgLen:   *avgLen,
		Category: synth.Mixed,
		Seed:     *seed,
	})
	col := profile.NewCollector()
	nic, err := nicsim.New(prog, nicsim.Config{
		Params: pm, Collector: col, Instrument: true, Seed: *seed + 1,
	})
	if err != nil {
		fatal("emulator: %v", err)
	}
	rec := target.NewRecorder(target.NewLocal(nic, col), fmt.Sprintf("%s-synth-%d", pm.Name, *seed))
	rt, err := core.NewRuntime(prog, rec, opt.DefaultConfig())
	if err != nil {
		fatal("runtime: %v", err)
	}

	gen := trafficgen.New(*seed+2, 0)
	gen.AddFlows(trafficgen.UniformFlows(*seed+3, *flows)...)
	gen.SetSkew(0.9)
	for i := 0; i < *rounds; i++ {
		if _, err := rec.Measure(gen.Batch(*perWin)); err != nil {
			fatal("measure: %v", err)
		}
		rep, err := rt.OptimizeOnce(time.Second)
		if err != nil {
			fatal("optimize round %d: %v", rep.Round, err)
		}
		fmt.Printf("tracegen: round %d deployed=%v gain=%.0f plan=%v\n",
			rep.Round, rep.Deployed, rep.Gain, rep.Plan)
	}

	trace := rec.Trace()
	if err := trace.EmbedProgram(prog); err != nil {
		fatal("embedding program: %v", err)
	}
	if err := trace.SaveFile(*out); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	fmt.Printf("tracegen: wrote %s (%d measurements, %d profiles, %d cache snapshots)\n",
		*out, len(trace.Measurements), len(trace.Profiles), len(trace.CacheStats))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
