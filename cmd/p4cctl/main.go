// Command p4cctl is the control-plane client for nicd: it inserts,
// modifies and deletes table entries against the *original* program's
// table names (Pipeleon's API mapping keeps them valid whatever layout is
// currently deployed), reads counters, and dumps the deployed program.
//
// Usage:
//
//	p4cctl [-addr 127.0.0.1:9559] ping
//	p4cctl insert -table acl1 -action drop_packet -match 23
//	p4cctl insert -table lpm_rt -action fwd -match 0x0a000000/8 -args 3
//	p4cctl insert -table acl -action allow -match 0x0a000000:0xff000000 -prio 7
//	p4cctl modify -table acl1 -match 23 -action allow
//	p4cctl delete -table acl1 -match 23
//	p4cctl counters
//	p4cctl program
//	p4cctl stats
//	p4cctl fleet status|rollout|optimize|quarantine|recover   (against fleetd)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pipeleon/internal/controlplane"
	"pipeleon/internal/p4ir"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9559", "nicd control-plane address")
	timeout := flag.Duration("timeout", 5*time.Second, "per-call round-trip timeout")
	connectTimeout := flag.Duration("connect-timeout", 5*time.Second, "TCP connect (and reconnect) timeout")
	retries := flag.Int("retries", 3, "total attempts per call; connection failures are retried with backoff and transparent reconnect")
	backoff := flag.Duration("retry-backoff", 50*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	verb := flag.Arg(0)
	if verb == "fleet" {
		// Fleet subcommands talk HTTP to fleetd, not TCP to a nicd.
		runFleet(flag.Args()[1:])
		return
	}

	sub := flag.NewFlagSet(verb, flag.ExitOnError)
	table := sub.String("table", "", "table name (original program)")
	action := sub.String("action", "", "action name")
	matchStr := sub.String("match", "", "comma-separated match values: V, V/prefixlen, or V:mask")
	argsStr := sub.String("args", "", "comma-separated action data")
	prio := sub.Int("prio", 0, "entry priority (ternary)")
	_ = sub.Parse(flag.Args()[1:])

	cl, err := controlplane.DialTimeout(*addr, *connectTimeout)
	if err != nil {
		fatal("connecting to %s: %v", *addr, err)
	}
	defer cl.Close()
	cl.Timeout = *timeout
	cl.Retry.MaxAttempts = *retries
	cl.Retry.BaseBackoff = *backoff

	switch verb {
	case "ping":
		if err := cl.Ping(); err != nil {
			fatal("ping: %v", err)
		}
		fmt.Println("ok")
	case "insert":
		match, err := parseMatch(*matchStr)
		if err != nil {
			fatal("%v", err)
		}
		e := p4ir.Entry{Priority: *prio, Match: match, Action: *action, Args: splitArgs(*argsStr)}
		if err := cl.InsertEntry(*table, e); err != nil {
			fatal("insert: %v", err)
		}
		fmt.Println("inserted")
	case "modify":
		match, err := parseMatch(*matchStr)
		if err != nil {
			fatal("%v", err)
		}
		if err := cl.ModifyEntry(*table, match, *action, splitArgs(*argsStr)); err != nil {
			fatal("modify: %v", err)
		}
		fmt.Println("modified")
	case "delete":
		match, err := parseMatch(*matchStr)
		if err != nil {
			fatal("%v", err)
		}
		if err := cl.DeleteEntry(*table, match); err != nil {
			fatal("delete: %v", err)
		}
		fmt.Println("deleted")
	case "counters":
		prof, err := cl.Counters()
		if err != nil {
			fatal("counters: %v", err)
		}
		var tables []string
		for t := range prof.ActionCounts {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			fmt.Printf("%s: total=%d\n", t, prof.TableTotal(t))
			var acts []string
			for a := range prof.ActionCounts[t] {
				acts = append(acts, a)
			}
			sort.Strings(acts)
			for _, a := range acts {
				fmt.Printf("  %-24s %d\n", a, prof.ActionCounts[t][a])
			}
		}
	case "program":
		prog, err := cl.Program()
		if err != nil {
			fatal("program: %v", err)
		}
		data, err := json.MarshalIndent(prog, "", "  ")
		if err != nil {
			fatal("encoding: %v", err)
		}
		fmt.Println(string(data))
	case "stats":
		raw, err := cl.Stats()
		if err != nil {
			fatal("stats: %v", err)
		}
		var pretty bytes.Buffer
		if json.Indent(&pretty, raw, "", "  ") == nil {
			fmt.Println(pretty.String())
		} else {
			fmt.Println(string(raw))
		}
	default:
		usage()
	}
}

// parseMatch parses "V[,V...]" where each V is value, value/prefixlen
// (LPM) or value:mask (ternary); values accept 0x hex.
func parseMatch(s string) ([]p4ir.MatchValue, error) {
	if s == "" {
		return nil, nil
	}
	var out []p4ir.MatchValue
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		var mv p4ir.MatchValue
		switch {
		case strings.Contains(part, "/"):
			bits := strings.SplitN(part, "/", 2)
			v, err := strconv.ParseUint(bits[0], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad match value %q: %v", part, err)
			}
			p, err := strconv.Atoi(bits[1])
			if err != nil {
				return nil, fmt.Errorf("bad prefix length %q: %v", part, err)
			}
			mv = p4ir.MatchValue{Value: v, PrefixLen: p}
		case strings.Contains(part, ":"):
			bits := strings.SplitN(part, ":", 2)
			v, err := strconv.ParseUint(bits[0], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad match value %q: %v", part, err)
			}
			m, err := strconv.ParseUint(bits[1], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad mask %q: %v", part, err)
			}
			mv = p4ir.MatchValue{Value: v, Mask: m}
		default:
			v, err := strconv.ParseUint(part, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad match value %q: %v", part, err)
			}
			mv = p4ir.MatchValue{Value: v}
		}
		out = append(out, mv)
	}
	return out, nil
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: p4cctl [-addr host:port] ping|insert|modify|delete|counters|program|stats [flags]")
	fmt.Fprintln(os.Stderr, "       p4cctl fleet [-fleet URL] status|rollout|optimize|quarantine|recover [flags]")
	os.Exit(2)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "p4cctl: "+format+"\n", args...)
	os.Exit(1)
}
