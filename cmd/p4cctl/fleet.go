package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"pipeleon/internal/fleet"
)

// runFleet implements the `p4cctl fleet` subcommands against a fleetd
// HTTP API:
//
//	p4cctl fleet [-fleet http://127.0.0.1:9560] status
//	p4cctl fleet rollout -program prog.json
//	p4cctl fleet optimize
//	p4cctl fleet quarantine -device sim3
//	p4cctl fleet recover -device sim3
func runFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	base := fs.String("fleet", "http://127.0.0.1:9560", "fleetd API base URL")
	device := fs.String("device", "", "device name (quarantine/recover)")
	progPath := fs.String("program", "", "program JSON to roll out")
	timeout := fs.Duration("timeout", 60*time.Second, "HTTP timeout (rollouts measure every device)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: p4cctl fleet [-fleet URL] status|rollout|optimize|quarantine|recover [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil || fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}
	verb := fs.Arg(0)
	// Accept flags after the verb too (`fleet quarantine -device sim2`).
	if rest := fs.Args()[1:]; len(rest) > 0 {
		if err := fs.Parse(rest); err != nil {
			fs.Usage()
			os.Exit(2)
		}
	}
	client := &http.Client{Timeout: *timeout}

	switch verb {
	case "status":
		var st fleet.Status
		fleetCall(client, http.MethodGet, *base+"/v1/status", nil, &st)
		printFleetStatus(st)
	case "rollout":
		if *progPath == "" {
			fatal("fleet rollout needs -program")
		}
		prog, err := os.ReadFile(*progPath)
		if err != nil {
			fatal("%v", err)
		}
		var rep fleet.RolloutReport
		fleetCall(client, http.MethodPost, *base+"/v1/rollout", bytes.NewReader(prog), &rep)
		printRollout(rep)
	case "optimize":
		var reps []fleet.RolloutReport
		fleetCall(client, http.MethodPost, *base+"/v1/optimize", nil, &reps)
		if len(reps) == 0 {
			fmt.Println("no profitable plans; fleet unchanged")
		}
		for _, rep := range reps {
			printRollout(rep)
		}
	case "quarantine", "recover":
		if *device == "" {
			fatal("fleet %s needs -device", verb)
		}
		u := fmt.Sprintf("%s/v1/%s?device=%s", *base, verb, url.QueryEscape(*device))
		var ack map[string]string
		fleetCall(client, http.MethodPost, u, nil, &ack)
		past := verb + "ed"
		if strings.HasSuffix(verb, "e") {
			past = verb + "d"
		}
		fmt.Printf("%s: %s\n", *device, past)
	default:
		fs.Usage()
		os.Exit(2)
	}
}

// fleetCall performs one API call and decodes the JSON response into out,
// dying with the server's error message on a non-2xx status.
func fleetCall(client *http.Client, method, u string, body io.Reader, out any) {
	req, err := http.NewRequest(method, u, body)
	if err != nil {
		fatal("%v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		fatal("fleetd: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal("reading response: %v", err)
	}
	if resp.StatusCode/100 != 2 {
		var e map[string]string
		if json.Unmarshal(data, &e) == nil && e["error"] != "" {
			fatal("fleetd: %s", e["error"])
		}
		fatal("fleetd: %s", resp.Status)
	}
	if err := json.Unmarshal(data, out); err != nil {
		fatal("decoding response: %v", err)
	}
}

func printFleetStatus(st fleet.Status) {
	fmt.Printf("fleet: %d devices — %d healthy, %d degraded, %d quarantined, %d recovering (%d serving)\n",
		len(st.Devices), st.Healthy, st.Degraded, st.Quarantined, st.Recovering, st.Serving)
	fmt.Printf("rollouts: %d total, %d halted, %d fleet rollbacks; plan cache %d entries (%d hits / %d misses)\n",
		st.Rollouts, st.HaltedRollouts, st.FleetRollbacks,
		st.PlanCache.Entries, st.PlanCache.Hits, st.PlanCache.Misses)
	fmt.Printf("search: %d warm sessions, %d rounds in %s; unit memo %d hits / %d misses, verify memo %d hits / %d misses\n",
		st.OptSearch.Sessions, st.OptSearch.Rounds,
		time.Duration(st.OptSearch.TotalSearchNs),
		st.OptSearch.UnitHits, st.OptSearch.UnitMisses,
		st.OptSearch.VerifyHits, st.OptSearch.VerifyMisses)
	for _, d := range st.Devices {
		line := fmt.Sprintf("  %-12s %-11s model=%s probes=%d/%d deploys=%d/%d rollbacks=%d",
			d.Name, d.State, d.Model, d.Probes-d.ProbeFails, d.Probes,
			d.Deploys-d.DeployFails, d.Deploys, d.RolledBack)
		if d.Permanent {
			line += " PERMANENT"
		}
		if d.LastError != "" {
			line += " err=" + d.LastError
		}
		fmt.Println(line)
	}
}

func printRollout(rep fleet.RolloutReport) {
	switch {
	case rep.Halted && rep.RolledBack:
		fmt.Printf("rollout %s HALTED (%s); rolled back %d committed devices\n",
			rep.Fingerprint, rep.HaltReason, rep.Failed)
	case rep.Halted:
		fmt.Printf("rollout %s HALTED (%s); nothing to roll back\n", rep.Fingerprint, rep.HaltReason)
	default:
		fmt.Printf("rollout %s committed on %d devices\n", rep.Fingerprint, len(rep.Committed))
	}
	for _, r := range rep.Results {
		state := "committed"
		switch {
		case r.Converged:
			state = "already converged"
		case r.FleetRolledBack:
			state = "fleet-rolled-back"
		case r.RolledBack:
			state = "rolled back (verify)"
		case !r.Committed:
			state = "failed"
		}
		line := fmt.Sprintf("  %-12s stage=%d %s", r.Device, r.Stage, state)
		if r.VerifyDelta != 0 {
			line += fmt.Sprintf(" delta=%+.1f%%", r.VerifyDelta*100)
		}
		if r.Err != "" {
			line += " err=" + r.Err
		}
		fmt.Println(line)
	}
	if len(rep.Skipped) > 0 {
		fmt.Printf("  skipped (not serving): %v\n", rep.Skipped)
	}
}
