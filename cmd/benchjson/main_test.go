package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestParseGolden pins the bench-output parser end to end: the sample
// `go test -bench` transcript in testdata must convert to exactly the
// archived JSON document. Regenerate with `go test ./cmd/benchjson -update`
// after intentional format changes.
func TestParseGolden(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	var echo bytes.Buffer
	doc, err := parse(in, &echo)
	if err != nil {
		t.Fatal(err)
	}
	got, err := doc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "bench.golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("parsed document diverges from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The input must be echoed verbatim (benchjson sits at the end of a
	// pipeline without hiding the run).
	raw, err := os.ReadFile(filepath.Join("testdata", "bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo.Bytes(), raw) {
		t.Error("input not echoed verbatim")
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	pipeleon/internal/nicsim	4.221s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoMetrics-8 100",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEmulatorProcess-8":           "BenchmarkEmulatorProcess",
		"BenchmarkMeasureParallel/workers-8":   "BenchmarkMeasureParallel/workers",
		"BenchmarkPlain":                       "BenchmarkPlain",
		"BenchmarkMeasureParallel/workers-8-8": "BenchmarkMeasureParallel/workers-8",
		// The "=" convention keeps parameterized sub-benchmarks distinct in
		// both forms go emits: with the -GOMAXPROCS suffix (multi-CPU) and
		// without it (GOMAXPROCS=1, where a "-N" ending would be eaten).
		"BenchmarkMeasureParallel/workers=8-8": "BenchmarkMeasureParallel/workers=8",
		"BenchmarkMeasureParallel/workers=4":   "BenchmarkMeasureParallel/workers=4",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func bench(name string, metrics map[string]float64) Bench {
	return Bench{Name: name, Iterations: 100, Metrics: metrics}
}

// TestCompareDocs pins the regression-gate semantics: >max-regress ns/op
// growth fails, any allocs/op growth fails, vanished benchmarks fail, new
// benchmarks and improvements pass, and -gate restricts the checked set.
func TestCompareDocs(t *testing.T) {
	base := Doc{Benchmarks: []Bench{
		bench("BenchmarkEmulatorProcessBurst", map[string]float64{"ns/op": 170, "allocs/op": 0}),
		bench("BenchmarkMeasureParallel/workers=1", map[string]float64{"ns/op": 1000, "pkts/s": 5.5e6}),
		bench("BenchmarkSwap", map[string]float64{"ns/op": 240000}),
	}}

	t.Run("identical run passes", func(t *testing.T) {
		if v := compareDocs(&base, &base, 0.15, nil); len(v) != 0 {
			t.Errorf("identical docs flagged: %v", v)
		}
	})

	t.Run("ns/op within threshold passes", func(t *testing.T) {
		cur := Doc{Benchmarks: []Bench{
			bench("BenchmarkEmulatorProcessBurst", map[string]float64{"ns/op": 170 * 1.10, "allocs/op": 0}),
			bench("BenchmarkMeasureParallel/workers=1", map[string]float64{"ns/op": 900}),
			bench("BenchmarkSwap", map[string]float64{"ns/op": 240000}),
		}}
		if v := compareDocs(&base, &cur, 0.15, nil); len(v) != 0 {
			t.Errorf("10%% growth flagged at 15%% threshold: %v", v)
		}
	})

	t.Run("ns/op regression fails", func(t *testing.T) {
		cur := Doc{Benchmarks: []Bench{
			bench("BenchmarkEmulatorProcessBurst", map[string]float64{"ns/op": 170 * 1.30, "allocs/op": 0}),
			bench("BenchmarkMeasureParallel/workers=1", map[string]float64{"ns/op": 1000}),
			bench("BenchmarkSwap", map[string]float64{"ns/op": 240000}),
		}}
		v := compareDocs(&base, &cur, 0.15, nil)
		if len(v) != 1 || !strings.Contains(v[0], "ns/op") {
			t.Errorf("30%% growth not flagged exactly once: %v", v)
		}
	})

	t.Run("allocs growth fails even when faster", func(t *testing.T) {
		cur := Doc{Benchmarks: []Bench{
			bench("BenchmarkEmulatorProcessBurst", map[string]float64{"ns/op": 150, "allocs/op": 1}),
			bench("BenchmarkMeasureParallel/workers=1", map[string]float64{"ns/op": 1000}),
			bench("BenchmarkSwap", map[string]float64{"ns/op": 240000}),
		}}
		v := compareDocs(&base, &cur, 0.15, nil)
		if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
			t.Errorf("allocs growth not flagged exactly once: %v", v)
		}
	})

	t.Run("alloc rounding wobble on macro benches passes", func(t *testing.T) {
		big := Doc{Benchmarks: []Bench{
			bench("BenchmarkFig12a", map[string]float64{"ns/op": 2e7, "allocs/op": 45800}),
		}}
		cur := Doc{Benchmarks: []Bench{
			bench("BenchmarkFig12a", map[string]float64{"ns/op": 2e7, "allocs/op": 45801}),
		}}
		if v := compareDocs(&big, &cur, 0.15, nil); len(v) != 0 {
			t.Errorf("+-1 alloc wobble on a 45k-alloc bench flagged: %v", v)
		}
		cur.Benchmarks[0].Metrics["allocs/op"] = 45800 * 1.01
		if v := compareDocs(&big, &cur, 0.15, nil); len(v) != 1 {
			t.Errorf("1%% alloc growth not flagged: %v", v)
		}
	})

	t.Run("repeated runs compare best-of-N", func(t *testing.T) {
		cur := Doc{Benchmarks: []Bench{
			// -count=3: one noisy outlier, one clean run, one middling.
			bench("BenchmarkEmulatorProcessBurst", map[string]float64{"ns/op": 170 * 1.40, "allocs/op": 0}),
			bench("BenchmarkEmulatorProcessBurst", map[string]float64{"ns/op": 168, "allocs/op": 0}),
			bench("BenchmarkEmulatorProcessBurst", map[string]float64{"ns/op": 170 * 1.10, "allocs/op": 0}),
			bench("BenchmarkMeasureParallel/workers=1", map[string]float64{"ns/op": 1000}),
			bench("BenchmarkSwap", map[string]float64{"ns/op": 240000}),
		}}
		if v := compareDocs(&base, &cur, 0.15, nil); len(v) != 0 {
			t.Errorf("best-of-3 within threshold flagged: %v", v)
		}
		// All three repeats regressed: now it is real.
		for i := 0; i < 3; i++ {
			cur.Benchmarks[i].Metrics["ns/op"] = 170 * 1.30
		}
		if v := compareDocs(&base, &cur, 0.15, nil); len(v) != 1 {
			t.Errorf("consistent regression across repeats not flagged exactly once: %v", v)
		}
	})

	t.Run("vanished benchmark fails", func(t *testing.T) {
		cur := Doc{Benchmarks: []Bench{
			bench("BenchmarkEmulatorProcessBurst", map[string]float64{"ns/op": 170, "allocs/op": 0}),
			bench("BenchmarkSwap", map[string]float64{"ns/op": 240000}),
		}}
		v := compareDocs(&base, &cur, 0.15, nil)
		if len(v) != 1 || !strings.Contains(v[0], "missing") {
			t.Errorf("vanished benchmark not flagged: %v", v)
		}
	})

	t.Run("new benchmark passes freely", func(t *testing.T) {
		cur := Doc{Benchmarks: append([]Bench{
			bench("BenchmarkBrandNew", map[string]float64{"ns/op": 1e9}),
		}, base.Benchmarks...)}
		if v := compareDocs(&base, &cur, 0.15, nil); len(v) != 0 {
			t.Errorf("new benchmark flagged: %v", v)
		}
	})

	t.Run("gate regexp restricts the checked set", func(t *testing.T) {
		cur := Doc{Benchmarks: []Bench{
			bench("BenchmarkEmulatorProcessBurst", map[string]float64{"ns/op": 170, "allocs/op": 0}),
			bench("BenchmarkMeasureParallel/workers=1", map[string]float64{"ns/op": 1000}),
			bench("BenchmarkSwap", map[string]float64{"ns/op": 240000 * 10}),
		}}
		re := regexp.MustCompile(`^Benchmark(EmulatorProcess|MeasureParallel)`)
		if v := compareDocs(&base, &cur, 0.15, re); len(v) != 0 {
			t.Errorf("ungated benchmark flagged despite -gate: %v", v)
		}
		if v := compareDocs(&base, &cur, 0.15, nil); len(v) != 1 {
			t.Errorf("expected the Swap regression without -gate: %v", v)
		}
	})
}
