package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestParseGolden pins the bench-output parser end to end: the sample
// `go test -bench` transcript in testdata must convert to exactly the
// archived JSON document. Regenerate with `go test ./cmd/benchjson -update`
// after intentional format changes.
func TestParseGolden(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	var echo bytes.Buffer
	doc, err := parse(in, &echo)
	if err != nil {
		t.Fatal(err)
	}
	got, err := doc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "bench.golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("parsed document diverges from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The input must be echoed verbatim (benchjson sits at the end of a
	// pipeline without hiding the run).
	raw, err := os.ReadFile(filepath.Join("testdata", "bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo.Bytes(), raw) {
		t.Error("input not echoed verbatim")
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	pipeleon/internal/nicsim	4.221s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoMetrics-8 100",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEmulatorProcess-8":           "BenchmarkEmulatorProcess",
		"BenchmarkMeasureParallel/workers-8":   "BenchmarkMeasureParallel/workers",
		"BenchmarkPlain":                       "BenchmarkPlain",
		"BenchmarkMeasureParallel/workers-8-8": "BenchmarkMeasureParallel/workers-8",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
