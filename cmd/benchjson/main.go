// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark results can be archived and diffed (the
// repo's `make bench` writes BENCH_emulator.json this way).
//
// Usage:
//
//	go test -bench '...' -benchmem | go run ./cmd/benchjson -out BENCH_emulator.json
//
// Input lines it understands look like
//
//	BenchmarkEmulatorProcess-8   	  912310	      1212 ns/op	     848 B/op	       2 allocs/op
//	BenchmarkMeasureParallel/workers-8-8  	     100	  10510000 ns/op	   389000 pkts/s	...
//
// i.e. a benchmark name (the trailing -GOMAXPROCS suffix is stripped), an
// iteration count, then (value, unit) pairs — including custom metrics
// reported via b.ReportMetric. Everything else (PASS, ok, goos lines) is
// passed over; the input is echoed to stdout so the command can sit at the
// end of a pipeline without hiding the run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result.
type Bench struct {
	// Name is the benchmark (and sub-benchmark) name without the
	// -GOMAXPROCS suffix, e.g. "BenchmarkMeasureParallel/workers-8".
	Name string `json:"name"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op", plus any
	// custom b.ReportMetric units such as "pkts/s".
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the output document.
type Doc struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output JSON file (default: stdout only)")
	flag.Parse()

	doc, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading input: %v\n", err)
		os.Exit(1)
	}

	data, err := doc.MarshalIndent()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parse reads `go test -bench` text from r, echoing every line to echo
// (nil disables the echo) and collecting benchmark results and platform
// headers into a Doc.
func parse(r io.Reader, echo io.Writer) (Doc, error) {
	doc := Doc{Benchmarks: []Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if b, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// MarshalIndent renders the document as the archived JSON form, newline
// terminated.
func (d *Doc) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// parseLine extracts one benchmark result; ok is false for non-result
// lines.
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: stripProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Bench{}, false
	}
	return b, true
}

// stripProcs removes the trailing -GOMAXPROCS suffix Go appends to
// benchmark names (Benchmark/sub-8 -> Benchmark/sub).
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
