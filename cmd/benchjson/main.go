// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark results can be archived and diffed (the
// repo's `make bench` writes BENCH_emulator.json this way).
//
// Usage:
//
//	go test -bench '...' -benchmem | go run ./cmd/benchjson -out BENCH_emulator.json
//
// Input lines it understands look like
//
//	BenchmarkEmulatorProcess-8   	  912310	      1212 ns/op	     848 B/op	       2 allocs/op
//	BenchmarkMeasureParallel/workers-8-8  	     100	  10510000 ns/op	   389000 pkts/s	...
//
// i.e. a benchmark name (the trailing -GOMAXPROCS suffix is stripped), an
// iteration count, then (value, unit) pairs — including custom metrics
// reported via b.ReportMetric. Everything else (PASS, ok, goos lines) is
// passed over; the input is echoed to stdout so the command can sit at the
// end of a pipeline without hiding the run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result.
type Bench struct {
	// Name is the benchmark (and sub-benchmark) name without the
	// -GOMAXPROCS suffix, e.g. "BenchmarkMeasureParallel/workers-8".
	Name string `json:"name"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op", plus any
	// custom b.ReportMetric units such as "pkts/s".
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the output document.
type Doc struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output JSON file (default: stdout only)")
	compare := flag.String("compare", "", "baseline JSON file; exit nonzero on regression against it")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed fractional ns/op growth vs the -compare baseline")
	gate := flag.String("gate", "", "regexp restricting which benchmarks the -compare gate checks (default: all)")
	flag.Parse()

	doc, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading input: %v\n", err)
		os.Exit(1)
	}

	data, err := doc.MarshalIndent()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	}

	if *compare == "" {
		return
	}
	base, err := readDoc(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
		os.Exit(1)
	}
	var re *regexp.Regexp
	if *gate != "" {
		re, err = regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -gate regexp: %v\n", err)
			os.Exit(1)
		}
	}
	violations := compareDocs(&base, &doc, *maxRegress, re)
	if len(violations) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no regressions vs %s (max-regress %.0f%%)\n", *compare, *maxRegress*100)
		return
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", v)
	}
	os.Exit(1)
}

// readDoc loads an archived benchmark document written by -out.
func readDoc(path string) (Doc, error) {
	var d Doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// compareDocs is the bench-regression gate: for every baseline benchmark
// (matching gate, when non-nil) it demands the new run be present, within
// maxRegress fractional ns/op growth, and with no allocs/op growth
// (beyond 0.1% + 0.5 of slack, so 0->1 and 2->3 on a hot path fail while
// a +-1 rounding wobble on a 45k-alloc macro-benchmark does not). When a
// run repeats a benchmark (-count=N), the best value per metric is
// compared — the standard defense against scheduler noise on shared
// runners. A benchmark that vanished counts as a violation so the gate
// cannot be dodged by renaming. New benchmarks absent from the baseline
// pass freely.
func compareDocs(base, cur *Doc, maxRegress float64, gate *regexp.Regexp) []string {
	// Per-name minimum of each metric across repeated runs, for both
	// sides (a -count=N baseline gets the same treatment).
	best := func(d *Doc) map[string]map[string]float64 {
		m := make(map[string]map[string]float64, len(d.Benchmarks))
		for _, b := range d.Benchmarks {
			mm := m[b.Name]
			if mm == nil {
				mm = map[string]float64{}
				m[b.Name] = mm
			}
			for unit, v := range b.Metrics {
				if prev, ok := mm[unit]; !ok || v < prev {
					mm[unit] = v
				}
			}
		}
		return m
	}
	baseBest, curBest := best(base), best(cur)

	var violations []string
	seen := make(map[string]bool, len(base.Benchmarks))
	for _, old := range base.Benchmarks {
		if seen[old.Name] || (gate != nil && !gate.MatchString(old.Name)) {
			continue
		}
		seen[old.Name] = true
		now, ok := curBest[old.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from this run", old.Name))
			continue
		}
		ref := baseBest[old.Name]
		if oldNs, ok := ref["ns/op"]; ok && oldNs > 0 {
			if newNs, ok := now["ns/op"]; ok {
				if growth := newNs/oldNs - 1; growth > maxRegress {
					violations = append(violations, fmt.Sprintf(
						"%s: ns/op %.4g -> %.4g (+%.1f%%, limit +%.0f%%)",
						old.Name, oldNs, newNs, growth*100, maxRegress*100))
				}
			}
		}
		if oldAllocs, ok := ref["allocs/op"]; ok {
			if newAllocs, ok := now["allocs/op"]; ok && newAllocs > oldAllocs*1.001+0.5 {
				violations = append(violations, fmt.Sprintf(
					"%s: allocs/op grew %g -> %g",
					old.Name, oldAllocs, newAllocs))
			}
		}
	}
	return violations
}

// parse reads `go test -bench` text from r, echoing every line to echo
// (nil disables the echo) and collecting benchmark results and platform
// headers into a Doc.
func parse(r io.Reader, echo io.Writer) (Doc, error) {
	doc := Doc{Benchmarks: []Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if b, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// MarshalIndent renders the document as the archived JSON form, newline
// terminated.
func (d *Doc) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// parseLine extracts one benchmark result; ok is false for non-result
// lines.
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: stripProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Bench{}, false
	}
	return b, true
}

// stripProcs removes the trailing -GOMAXPROCS suffix Go appends to
// benchmark names (Benchmark/sub-8 -> Benchmark/sub). On a single-CPU
// runner Go omits the suffix entirely, so a sub-benchmark whose own name
// ends in "-<digits>" (e.g. "workers-8") would be eaten here and collapse
// with its siblings; parameterized sub-benchmarks therefore use "=" in
// their names ("workers=8"), which survives stripping in both forms.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
