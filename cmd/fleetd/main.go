// Command fleetd is the Pipeleon fleet controller daemon: it supervises
// many SmartNIC device servers at once — remote nicds over the control
// plane, or an in-process simulated rack — probing their health on a
// background loop, quarantining flapping devices, and driving staged
// canary rollouts with automatic halt-and-rollback. It serves a small
// HTTP JSON API that `p4cctl fleet` talks to:
//
//	GET  /v1/status             aggregate fleet + per-device status
//	POST /v1/rollout            staged rollout of the posted program JSON
//	POST /v1/optimize           profile canaries, plan via the shared
//	                            cache, roll optimized layouts out per model
//	POST /v1/quarantine?device= force a device out of rotation
//	POST /v1/recover?device=    lift a quarantine (probation re-entry)
//	GET  /metrics               the same counters in Prometheus text format
//
// Usage:
//
//	fleetd -devices 10.0.0.1:9559,10.0.0.2:9559 [-listen 127.0.0.1:9560]
//	fleetd -sim 8 -program prog.json [-traffic 2000]
//	fleetd -scenario            run the scripted 8-device fault drill and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"pipeleon/internal/costmodel"
	"pipeleon/internal/faultinject"
	"pipeleon/internal/fleet"
	"pipeleon/internal/nicsim"
	"pipeleon/internal/opt"
	"pipeleon/internal/p4c"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/packet"
	"pipeleon/internal/profile"
	"pipeleon/internal/target"
	"pipeleon/internal/target/remote"
	"pipeleon/internal/trafficgen"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9560", "fleet API listen address")
		devices  = flag.String("devices", "", "comma-separated nicd control-plane addresses")
		sim      = flag.Int("sim", 0, "run this many in-process emulated devices instead of dialing nicds")
		progPath = flag.String("program", "", "program JSON for -sim devices (required with -sim)")
		model    = flag.String("target", "bluefield2", "bluefield2|agiliocx|emulated (for -sim)")
		flows    = flag.Int("traffic", 2000, "flow population for -sim verification traffic")
		interval = flag.Duration("interval", 2*time.Second, "health-probe interval")
		scenario = flag.Bool("scenario", false, "run the scripted 8-device fault scenario and exit (non-zero on failure)")

		canary  = flag.Int("canary", 1, "rollout canary size")
		wave    = flag.Int("wave", 2, "first post-canary wave size (doubles per wave)")
		maxFail = flag.Float64("max-failure-frac", 0.25, "halt rollouts beyond this cumulative failure ratio")
		verify  = flag.Int("verify-packets", 256, "packets per rollout verification measurement (0 disables)")
		maxRegr = flag.Float64("max-regression", 0.2, "per-device rollback when verify latency regresses beyond this fraction")
		quiet   = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Printf("fleetd: "+format+"\n", args...)
		}
	}

	if *scenario {
		os.Exit(runScenario(logf))
	}

	var pm costmodel.Params
	switch *model {
	case "bluefield2":
		pm = costmodel.BlueField2()
	case "agiliocx":
		pm = costmodel.AgilioCX()
	case "emulated":
		pm = costmodel.EmulatedNIC()
	default:
		fatal("unknown target %q", *model)
	}

	ctl := fleet.New(fleet.Options{
		Policy:    fleet.DefaultHealthPolicy(),
		Optimizer: opt.DefaultConfig(),
		Logf:      logf,
	})

	var base *p4ir.Program
	var sampler func(n int) []*packet.Packet
	switch {
	case *sim > 0:
		if *progPath == "" {
			fatal("-sim needs -program")
		}
		var err error
		base, err = loadProgram(*progPath)
		if err != nil {
			fatal("loading program: %v", err)
		}
		gen := trafficgen.New(1, 0)
		gen.AddFlows(trafficgen.UniformFlows(2, *flows)...)
		sampler = lockedSampler(gen)
		for i := 0; i < *sim; i++ {
			name := fmt.Sprintf("sim%d", i)
			tgt, err := simDevice(base, pm)
			if err != nil {
				fatal("starting %s: %v", name, err)
			}
			if err := ctl.Add(name, tgt); err != nil {
				fatal("%v", err)
			}
		}
		logf("simulating %d %s devices", *sim, pm.Name)
	case *devices != "":
		for _, addr := range strings.Split(*devices, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			dev, err := remote.Dial(addr)
			if err != nil {
				fatal("dialing %s: %v", addr, err)
			}
			if err := ctl.Add(addr, dev); err != nil {
				fatal("%v", err)
			}
			logf("attached %s (%s)", addr, dev.Capabilities().Model)
		}
	default:
		fatal("need -devices or -sim (or -scenario)")
	}

	rcfg := fleet.RolloutConfig{
		Canary:         *canary,
		FirstWave:      *wave,
		MaxFailureFrac: *maxFail,
	}
	if *verify > 0 && sampler != nil {
		rcfg.Verify = fleet.VerifyConfig{Sampler: sampler, Packets: *verify, MaxRegression: *maxRegr}
	}

	stop := make(chan struct{})
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		ctl.Run(*interval, stop)
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ctl.Status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = fleet.WriteMetrics(w, ctl.Status())
	})
	mux.HandleFunc("/v1/rollout", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST a program JSON")
			return
		}
		var prog p4ir.Program
		if err := json.NewDecoder(r.Body).Decode(&prog); err != nil {
			httpErr(w, http.StatusBadRequest, "decoding program: %v", err)
			return
		}
		rep, err := ctl.Rollout(&prog, rcfg)
		if err != nil {
			httpErr(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/v1/optimize", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST here")
			return
		}
		if base == nil {
			httpErr(w, http.StatusPreconditionFailed, "no base program (-sim mode only)")
			return
		}
		reports, err := ctl.OptimizeAndRollout(base, rcfg)
		if err != nil {
			httpErr(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, reports)
	})
	deviceAction := func(fn func(string) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				httpErr(w, http.StatusMethodNotAllowed, "POST here")
				return
			}
			name := r.URL.Query().Get("device")
			if name == "" {
				httpErr(w, http.StatusBadRequest, "missing ?device=")
				return
			}
			if err := fn(name); err != nil {
				httpErr(w, http.StatusNotFound, "%v", err)
				return
			}
			writeJSON(w, map[string]string{"device": name, "ok": "true"})
		}
	}
	mux.HandleFunc("/v1/quarantine", deviceAction(ctl.Quarantine))
	mux.HandleFunc("/v1/recover", deviceAction(ctl.Recover))

	srv := &http.Server{Addr: *listen, Handler: mux}
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.ListenAndServe() }()
	logf("fleet API at http://%s (probe interval %s)", *listen, *interval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-httpDone:
		fatal("http server: %v", err)
	}
	close(stop)
	<-loopDone
	srv.Close()
	fmt.Println("fleetd: bye")
}

// loadProgram loads a program from JSON or compiles it from .p4 source,
// matching nicd's -program handling.
func loadProgram(path string) (*p4ir.Program, error) {
	if strings.HasSuffix(path, ".p4") {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return p4c.Compile(string(src))
	}
	return p4ir.LoadFile(path)
}

// simDevice builds one in-process emulated device: a nicsim-backed Local
// target wrapped for fault injection (unscripted by default).
func simDevice(prog *p4ir.Program, pm costmodel.Params) (target.Target, error) {
	col := profile.NewCollector()
	nic, err := nicsim.New(prog.Clone(), nicsim.Config{Params: pm, Collector: col, Instrument: true})
	if err != nil {
		return nil, err
	}
	return fleet.WithFaults(target.NewLocal(nic, col), faultinject.NewScript()), nil
}

// lockedSampler serializes a generator: rollout stages measure devices
// concurrently.
func lockedSampler(gen *trafficgen.Generator) func(n int) []*packet.Packet {
	var mu sync.Mutex
	return func(n int) []*packet.Packet {
		mu.Lock()
		defer mu.Unlock()
		return gen.Batch(n)
	}
}

// runScenario assembles the scripted 8-device rack and runs the fleet
// acceptance drill (the same one `go test ./internal/fleet` pins):
// canary gate, mid-wave halt+rollback, breaker quarantine with graceful
// degradation, probation re-admission. Exit code 0 iff every phase's
// assertions held — `make fleet-sim` gates on it.
func runScenario(logf func(string, ...any)) int {
	progA, err := scenarioProgram("aclprog", []string{"t1", "t2", "acl1", "acl2"})
	if err == nil {
		var progB *p4ir.Program
		progB, err = scenarioProgram("aclprog.next", []string{"acl2", "acl1", "t1", "t2"})
		if err == nil {
			err = driveScenario(progA, progB, logf)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: scenario FAILED: %v\n", err)
		return 1
	}
	fmt.Println("fleetd: scenario passed")
	return 0
}

func driveScenario(progA, progB *p4ir.Program, logf func(string, ...any)) error {
	members := make([]fleet.FleetMember, 0, 8)
	for i := 0; i < 8; i++ {
		script := faultinject.NewScript()
		col := profile.NewCollector()
		nic, err := nicsim.New(progA.Clone(), nicsim.Config{
			Params: costmodel.BlueField2(), Collector: col, Instrument: true,
		})
		if err != nil {
			return err
		}
		members = append(members, fleet.FleetMember{
			Name:   fmt.Sprintf("sim%d", i),
			Target: fleet.WithFaults(target.NewLocal(nic, col), script),
			Script: script,
		})
	}
	gen := trafficgen.New(1, 0)
	gen.AddFlows(trafficgen.DropTargetedFlows(2, 2000, "tcp.dport", 23, 0.8)...)
	return fleet.RunFaultScenario(fleet.FaultScenarioInput{
		Devices: members,
		Next:    progB,
		Sampler: lockedSampler(gen),
		Logf:    logf,
	})
}

// scenarioProgram builds the drill pipeline: two plain tables and two
// ACLs, in the given order (the reordered variant is the rollout target).
func scenarioProgram(name string, order []string) (*p4ir.Program, error) {
	mk := func(name, field string) p4ir.TableSpec {
		return p4ir.TableSpec{
			Name:          name,
			Keys:          []p4ir.Key{{Field: field, Kind: p4ir.MatchExact, Width: packet.FieldWidth(field)}},
			Actions:       []*p4ir.Action{p4ir.NewAction("set", p4ir.Prim("modify_field", "meta."+name, "1")), p4ir.NoopAction("pass")},
			DefaultAction: "pass",
		}
	}
	acl := func(name, field string, dropVal uint64) p4ir.TableSpec {
		return p4ir.TableSpec{
			Name:          name,
			Keys:          []p4ir.Key{{Field: field, Kind: p4ir.MatchExact, Width: packet.FieldWidth(field)}},
			Actions:       []*p4ir.Action{p4ir.DropAction(), p4ir.NoopAction("allow")},
			DefaultAction: "allow",
			Entries:       []p4ir.Entry{{Match: []p4ir.MatchValue{{Value: dropVal}}, Action: "drop_packet"}},
		}
	}
	specs := map[string]p4ir.TableSpec{
		"t1":   mk("t1", "ipv4.dstAddr"),
		"t2":   mk("t2", "ipv4.srcAddr"),
		"acl1": acl("acl1", "tcp.sport", 1111),
		"acl2": acl("acl2", "tcp.dport", 23),
	}
	ordered := make([]p4ir.TableSpec, 0, len(order))
	for _, n := range order {
		ordered = append(ordered, specs[n])
	}
	return p4ir.ChainTables(name, ordered)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "fleetd: "+format+"\n", args...)
	os.Exit(1)
}
