// Command nicd runs a software SmartNIC: it loads a P4 program JSON into
// the emulator, starts the Pipeleon runtime loop (windowed profiling +
// re-optimization + hot swap), and serves the program-management API over
// TCP for p4cctl. With -traffic it also self-generates a packet workload
// so the profile-guided loop has something to observe — a single-binary
// "rack demo" of the paper's Figure 3 workflow.
//
// Usage:
//
//	nicd -program prog.json [-target bluefield2] [-listen 127.0.0.1:9559]
//	     [-interval 5s] [-traffic 1000] [-skew 0.9] [-pps 50000]
//	     [-duration 30s] [-quiet]
//	     [-verify-packets 256] [-max-regression 0.1] [-min-realized-gain 0.2]
//	     [-blacklist-rounds 3] [-breaker-threshold 3] [-breaker-cooldown 5]
//	     [-fault "deploy.fail=0.1,conn.write.drop=0.05"] [-fault-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"pipeleon/internal/controlplane"
	"pipeleon/internal/core"
	"pipeleon/internal/costmodel"
	"pipeleon/internal/faultinject"
	"pipeleon/internal/nicsim"
	"pipeleon/internal/opt"
	"pipeleon/internal/p4c"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/profile"
	"pipeleon/internal/target"
	"pipeleon/internal/trafficgen"
)

func main() {
	var (
		progPath = flag.String("program", "", "P4 program: JSON or .p4 source (required)")
		model    = flag.String("target", "bluefield2", "bluefield2|agiliocx|emulated")
		listen   = flag.String("listen", "127.0.0.1:9559", "control-plane listen address")
		devOnly  = flag.Bool("device-only", false, "serve only the device API (no on-box optimizer); a remote Pipeleon runtime drives this nicd over the control plane")
		interval = flag.Duration("interval", 5*time.Second, "optimization window")
		flows    = flag.Int("traffic", 0, "self-generate a workload with this many flows (0 = none)")
		skew     = flag.Float64("skew", 0.9, "traffic Zipf skew")
		pps      = flag.Int("pps", 20000, "self-generated packets per second")
		duration = flag.Duration("duration", 0, "exit after this long (0 = run until signal)")
		quiet    = flag.Bool("quiet", false, "suppress per-window stats")
		profOut  = flag.String("profile-out", "", "on exit, dump the last window's translated profile JSON here (usable with pipeleon -profile)")

		verifyPkts    = flag.Int("verify-packets", 256, "packets replayed in the post-deploy verification window (0 disables verify-and-rollback; needs -traffic)")
		maxRegress    = flag.Float64("max-regression", 0.1, "rollback when post-deploy mean latency regresses by more than this fraction")
		minRealized   = flag.Float64("min-realized-gain", 0.2, "rollback when measured improvement is below this fraction of the predicted gain (0 disables)")
		blacklistRnds = flag.Int("blacklist-rounds", 3, "rounds a rolled-back plan is barred from redeployment")
		breakerThresh = flag.Int("breaker-threshold", 3, "consecutive failed/rolled-back deploys that open the redeploy circuit breaker")
		breakerCool   = flag.Int("breaker-cooldown", 5, "rounds the circuit breaker pauses redeployment")
		faultSpec     = flag.String("fault", "", "fault-injection spec, e.g. 'deploy.fail=0.1,conn.write.drop=0.05,plan.scale=0.1:20' (empty = none)")
		faultSeed     = flag.Uint64("fault-seed", 1, "seed for the probabilistic fault injector")
	)
	flag.Parse()
	if *progPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var prog *p4ir.Program
	if strings.HasSuffix(*progPath, ".p4") {
		src, rerr := os.ReadFile(*progPath)
		if rerr != nil {
			fatal("loading program: %v", rerr)
		}
		var cerr error
		prog, cerr = p4c.Compile(string(src))
		if cerr != nil {
			fatal("compiling P4: %v", cerr)
		}
	} else {
		var lerr error
		prog, lerr = p4ir.LoadFile(*progPath)
		if lerr != nil {
			fatal("loading program: %v", lerr)
		}
	}
	var pm costmodel.Params
	switch *model {
	case "bluefield2":
		pm = costmodel.BlueField2()
	case "agiliocx":
		pm = costmodel.AgilioCX()
	case "emulated":
		pm = costmodel.EmulatedNIC()
	default:
		fatal("unknown target %q", *model)
	}

	faults, err := faultinject.ParseSpec(*faultSpec, *faultSeed)
	if err != nil {
		fatal("%v", err)
	}

	col := profile.NewCollector()
	nic, err := nicsim.New(prog, nicsim.Config{
		Params: pm, Collector: col, Instrument: true, CacheFillCostNs: 500,
		Faults: faults,
	})
	if err != nil {
		fatal("starting emulator: %v", err)
	}
	dev := target.NewLocal(nic, col)

	var rt *core.Runtime
	if !*devOnly {
		rt, err = core.NewRuntime(prog, dev, opt.DefaultConfig())
		if err != nil {
			fatal("starting runtime: %v", err)
		}
		rt.SetFaultInjector(faults)
	}

	var gen *trafficgen.Generator
	if *flows > 0 {
		gen = trafficgen.New(1, 0)
		gen.AddFlows(trafficgen.UniformFlows(2, *flows)...)
		gen.SetSkew(*skew)
	}
	if rt != nil && gen != nil && *verifyPkts > 0 {
		// The guard samples concurrently with the traffic goroutine, so it
		// takes its own Split child over the same flow population.
		vgen := gen.Split(1)[0]
		guard := core.DefaultDeployGuard(vgen.Batch)
		guard.VerifyPackets = *verifyPkts
		guard.MaxRegression = *maxRegress
		guard.MinRealizedGainFrac = *minRealized
		guard.BlacklistRounds = *blacklistRnds
		guard.BreakerThreshold = *breakerThresh
		guard.BreakerCooldownRounds = *breakerCool
		rt.SetDeployGuard(guard)
	}

	srvOpts := []controlplane.ServerOption{controlplane.WithDevice(dev)}
	if faults != nil {
		srvOpts = append(srvOpts, controlplane.WithFaultInjector(faults))
	}
	if rt != nil {
		// Serve the runtime's aggregated counters (deploys, rollbacks,
		// breaker state) on the stats op, so fleetd and `p4cctl stats` get
		// a machine-readable health document instead of a bare ack.
		srvOpts = append(srvOpts, controlplane.WithStatus(func() ([]byte, error) {
			return json.Marshal(rt.Status())
		}))
	}
	var backend controlplane.Backend
	if rt != nil {
		backend = rt
	}
	srv, err := controlplane.NewServer(*listen, backend, col, srvOpts...)
	if err != nil {
		fatal("starting control plane: %v", err)
	}
	defer srv.Close()
	mode := "optimizer"
	if *devOnly {
		mode = "device-only"
	}
	fmt.Printf("nicd: %s on %s model (%s), control plane at %s\n", prog.Name, pm.Name, mode, srv.Addr())

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if gen != nil {
					n := int(float64(*pps) * interval.Seconds())
					m := nic.MeasureParallel(gen.Batch(n), 0)
					if !*quiet {
						fmt.Printf("nicd: window %.1f Gbps, %.0f ns mean, drop %.1f%%\n",
							m.ThroughputGbps, m.MeanLatencyNs, m.DropRate*100)
					}
				}
				if rt == nil {
					continue // device-only: the remote runtime drives optimization
				}
				rep, err := rt.OptimizeOnce(*interval)
				if err != nil {
					fmt.Fprintf(os.Stderr, "nicd: optimize (round %d): %v\n", rep.Round, err)
					continue
				}
				if *quiet {
					continue
				}
				switch {
				case rep.RolledBack:
					fmt.Printf("nicd: round %d rolled back (verify delta %+.1f%%, predicted gain %.0f ns): %v\n",
						rep.Round, rep.VerifyDelta*100, rep.Gain, rep.Plan)
				case rep.BreakerOpen:
					fmt.Printf("nicd: round %d: redeploy circuit breaker open\n", rep.Round)
				case rep.PlanBlacklisted:
					fmt.Printf("nicd: round %d: plan blacklisted after rollback, holding layout\n", rep.Round)
				case rep.Deployed:
					fmt.Printf("nicd: deployed new layout (round %d, gain %.0f ns, verify delta %+.1f%%): %v\n",
						rep.Round, rep.Gain, rep.VerifyDelta*100, rep.Plan)
				}
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-sig:
		case <-time.After(*duration):
		}
	} else {
		<-sig
	}
	close(stop)
	<-done
	if *profOut != "" && rt != nil {
		prof := rt.TranslatedCounters()
		data, err := json.MarshalIndent(prof, "", "  ")
		if err == nil {
			err = os.WriteFile(*profOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nicd: writing profile: %v\n", err)
		} else {
			fmt.Printf("nicd: wrote profile to %s\n", *profOut)
		}
	}
	fmt.Println("nicd: bye")
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "nicd: "+format+"\n", args...)
	os.Exit(1)
}
