// Command p4lint runs the internal/analysis static analyzer over P4
// programs offline — the same rule set the runtime applies before any
// deploy, exposed as a standalone checker for CI and development.
//
// Usage:
//
//	p4lint [-target bluefield2|agiliocx|emulated] [-deep] [-json]
//	    [-warn-as-error] prog.json prog2.p4 trace.json ...
//
// Inputs may be BMv2-style program JSON, .p4 source (compiled with the
// internal frontend), or recorded replay traces (the embedded program is
// linted). -deep adds the symbolic tier: the abstract interpreter's
// value-range rules (PL2xx) on top of the structural lint. Each
// diagnostic prints as
//
//	file: CODE severity node(field): message
//
// or, with -json, as one JSON document over all files on stdout.
//
// Exit status is tiered: 0 when every file is clean, 1 when the worst
// finding is a warning, 2 when any Error-severity diagnostic was
// reported (with -warn-as-error, warnings also exit 2), and 3 on usage
// or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pipeleon/internal/analysis"
	"pipeleon/internal/costmodel"
	"pipeleon/internal/diag"
	"pipeleon/internal/p4c"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/target"
)

// fileReport is the per-file element of the -json document.
type fileReport struct {
	File     string    `json:"file"`
	Diags    diag.List `json:"diags"`
	Errors   int       `json:"errors"`
	Warnings int       `json:"warnings"`
}

func main() {
	var (
		targetName  = flag.String("target", "", "cost model target enabling memory-tier rules: bluefield2|agiliocx|emulated (default: none, or a trace's recorded model)")
		deep        = flag.Bool("deep", false, "run the symbolic tier too (abstract-interpretation value-range rules, PL2xx)")
		jsonOut     = flag.Bool("json", false, "emit one JSON document over all files instead of text lines")
		warnAsError = flag.Bool("warn-as-error", false, "treat warnings as errors for the exit status")
		quiet       = flag.Bool("q", false, "suppress per-file ok lines")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: p4lint [-target name] [-deep] [-json] [-warn-as-error] file.json|file.p4|trace.json ...")
		os.Exit(3)
	}
	var reports []fileReport
	worst := 0 // 0 clean, 1 warnings, 2 errors
	for _, path := range flag.Args() {
		prog, pm, hasPM, err := load(path, *targetName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4lint: %s: %v\n", path, err)
			os.Exit(3)
		}
		var opts []analysis.Option
		if hasPM {
			opts = append(opts, analysis.WithParams(pm))
		}
		diags := analysis.Lint(prog, opts...)
		if *deep {
			diags = append(diags, analysis.LintDeep(prog, opts...)...)
			diags.Sort()
		}
		nerr := len(diags.Errors())
		rep := fileReport{File: path, Diags: diags, Errors: nerr, Warnings: len(diags) - nerr}
		reports = append(reports, rep)
		switch {
		case nerr > 0 || (*warnAsError && len(diags) > 0):
			worst = 2
		case len(diags) > 0 && worst < 1:
			worst = 1
		}
		if *jsonOut {
			continue
		}
		for _, d := range diags {
			fmt.Printf("%s: %s\n", path, d)
		}
		if nerr == 0 && !*quiet {
			fmt.Printf("%s: ok (%d warning(s))\n", path, len(diags))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "p4lint: encoding report: %v\n", err)
			os.Exit(3)
		}
	}
	os.Exit(worst)
}

// load resolves one CLI argument into a program and (optionally) the
// cost-model parameters to lint it under.
func load(path, targetName string) (*p4ir.Program, costmodel.Params, bool, error) {
	var pm costmodel.Params
	hasPM := true
	switch targetName {
	case "bluefield2":
		pm = costmodel.BlueField2()
	case "agiliocx":
		pm = costmodel.AgilioCX()
	case "emulated":
		pm = costmodel.EmulatedNIC()
	case "":
		hasPM = false
	default:
		return nil, pm, false, fmt.Errorf("unknown target %q", targetName)
	}
	if strings.HasSuffix(path, ".p4") {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, pm, false, err
		}
		prog, err := p4c.Compile(string(src))
		if err != nil {
			return nil, pm, false, fmt.Errorf("compiling: %w", err)
		}
		return prog, pm, hasPM, nil
	}
	// A replay trace is JSON too; try it first so its embedded program and
	// recorded cost model are used.
	if trace, err := target.LoadTrace(path); err == nil {
		if prog, perr := trace.EmbeddedProgram(); perr == nil && prog != nil {
			if !hasPM {
				pm, hasPM = trace.Capabilities.Params, true
			}
			return prog, pm, hasPM, nil
		}
	}
	prog, err := p4ir.LoadFile(path)
	if err != nil {
		return nil, pm, false, err
	}
	return prog, pm, hasPM, nil
}
