// Command p4lint runs the internal/analysis static analyzer over P4
// programs offline — the same rule set the runtime applies before any
// deploy, exposed as a standalone checker for CI and development.
//
// Usage:
//
//	p4lint [-target bluefield2|agiliocx|emulated] [-warn-as-error]
//	    prog.json prog2.p4 trace.json ...
//
// Inputs may be BMv2-style program JSON, .p4 source (compiled with the
// internal frontend), or recorded replay traces (the embedded program is
// linted). Each diagnostic prints as
//
//	file: CODE severity node(field): message
//
// The exit status is 1 when any Error-severity diagnostic (or, with
// -warn-as-error, any diagnostic at all) was reported, and 2 on usage or
// I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pipeleon/internal/analysis"
	"pipeleon/internal/costmodel"
	"pipeleon/internal/p4c"
	"pipeleon/internal/p4ir"
	"pipeleon/internal/target"
)

func main() {
	var (
		targetName  = flag.String("target", "", "cost model target enabling memory-tier rules: bluefield2|agiliocx|emulated (default: none, or a trace's recorded model)")
		warnAsError = flag.Bool("warn-as-error", false, "exit non-zero on warnings too")
		quiet       = flag.Bool("q", false, "suppress per-file ok lines")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: p4lint [-target name] [-warn-as-error] file.json|file.p4|trace.json ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		prog, pm, hasPM, err := load(path, *targetName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4lint: %s: %v\n", path, err)
			os.Exit(2)
		}
		var opts []analysis.Option
		if hasPM {
			opts = append(opts, analysis.WithParams(pm))
		}
		diags := analysis.Lint(prog, opts...)
		for _, d := range diags {
			fmt.Printf("%s: %s\n", path, d)
		}
		if diags.HasErrors() || (*warnAsError && len(diags) > 0) {
			failed = true
		} else if !*quiet {
			fmt.Printf("%s: ok (%d warning(s))\n", path, len(diags))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// load resolves one CLI argument into a program and (optionally) the
// cost-model parameters to lint it under.
func load(path, targetName string) (*p4ir.Program, costmodel.Params, bool, error) {
	var pm costmodel.Params
	hasPM := true
	switch targetName {
	case "bluefield2":
		pm = costmodel.BlueField2()
	case "agiliocx":
		pm = costmodel.AgilioCX()
	case "emulated":
		pm = costmodel.EmulatedNIC()
	case "":
		hasPM = false
	default:
		return nil, pm, false, fmt.Errorf("unknown target %q", targetName)
	}
	if strings.HasSuffix(path, ".p4") {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, pm, false, err
		}
		prog, err := p4c.Compile(string(src))
		if err != nil {
			return nil, pm, false, fmt.Errorf("compiling: %w", err)
		}
		return prog, pm, hasPM, nil
	}
	// A replay trace is JSON too; try it first so its embedded program and
	// recorded cost model are used.
	if trace, err := target.LoadTrace(path); err == nil {
		if prog, perr := trace.EmbeddedProgram(); perr == nil && prog != nil {
			if !hasPM {
				pm, hasPM = trace.Capabilities.Params, true
			}
			return prog, pm, hasPM, nil
		}
	}
	prog, err := p4ir.LoadFile(path)
	if err != nil {
		return nil, pm, false, err
	}
	return prog, pm, hasPM, nil
}
