// DASH-style SmartNIC pipeline in the p4c subset (§5.3.2 shape):
// direction lookup, metadata setup, connection tracking, three ACL
// levels, and LPM routing. Entries are installed at runtime via the
// control plane (nicd + p4cctl) or the library entry API.

action set_direction(dir) { modify_field(meta.direction, dir); }
action set_appliance(id)  { modify_field(meta.appliance, id); }
action set_eni(eni)       { modify_field(meta.eni, eni); }
action track()            { modify_field(meta.conn, 1); }
action permit()           { no_op(); }
action deny()             { drop(); }
action fwd(port)          { forward(port); }

table direction_lookup {
    key = { ipv4.tos: exact; }
    actions = { set_direction; permit; }
    default_action = permit;
    size = 16;
}

table appliance_lookup {
    key = { ipv4.ttl: exact; }
    actions = { set_appliance; permit; }
    default_action = permit;
    size = 16;
}

table eni_lookup {
    key = { ipv4.proto: exact; }
    actions = { set_eni; permit; }
    default_action = permit;
    size = 16;
}

table conntrack {
    key = { ipv4.srcAddr: exact; tcp.sport: exact; }
    actions = { track; permit; }
    default_action = permit;
    size = 65536;
}

table acl_level1 {
    key = { ipv4.srcAddr: ternary; }
    actions = { deny; permit; }
    default_action = permit;
    size = 1024;
}

table acl_level2 {
    key = { ipv4.dstAddr: ternary; }
    actions = { deny; permit; }
    default_action = permit;
    size = 1024;
}

table acl_level3 {
    key = { tcp.dport: ternary; }
    actions = { deny; permit; }
    default_action = permit;
    size = 1024;
    const entries = {
        (23): deny() prio 10;        // telnet is always blocked
        (0:0x0000): permit() prio 1; // everything else falls through
    }
}

table routing {
    key = { ipv4.dstAddr: lpm; }
    actions = { fwd; permit; }
    default_action = permit;
    size = 4096;
    const entries = {
        (0x0a000000:lpm:8): fwd(1);  // 10/8 -> port 1
    }
}

control ingress {
    apply(direction_lookup);
    apply(appliance_lookup);
    apply(eni_lookup);
    if (ipv4.proto == 6) {
        apply(conntrack);
    }
    apply(acl_level1);
    apply(acl_level2);
    apply(acl_level3);
    apply(routing);
}
