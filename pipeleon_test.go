package pipeleon

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// demoProgram builds a small program through the public API.
func demoProgram(t testing.TB) *Program {
	t.Helper()
	prog, err := ChainTables("demo", []TableSpec{
		{
			Name: "screen",
			Keys: []Key{{Field: "ipv4.srcAddr", Kind: MatchTernary, Width: 32}},
			Actions: []*Action{
				NewAction("mark", Prim("modify_field", "meta.mark", "1")),
				NewAction("pass", Prim("no_op")),
			},
			DefaultAction: "pass",
			Entries: []Entry{
				{Priority: 1, Match: []MatchValue{{Value: 0x0a000000, Mask: 0xff000000}}, Action: "mark"},
			},
		},
		{
			Name: "acl",
			Keys: []Key{{Field: "tcp.dport", Kind: MatchExact, Width: 16}},
			Actions: []*Action{
				DropAction(),
				NewAction("allow", Prim("no_op")),
			},
			DefaultAction: "allow",
			Entries: []Entry{
				{Match: []MatchValue{{Value: 23}}, Action: "drop_packet"},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestPublicAPIEndToEnd(t *testing.T) {
	prog := demoProgram(t)
	target := BlueField2()
	col := NewCollector()
	emu, err := NewEmulator(prog, EmulatorConfig{Params: target, Collector: col, Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := NewTrafficGen(1)
	gen.AddFlows(DropTargetedFlows(2, 500, "tcp.dport", 23, 0.7)...)
	before := emu.Measure(gen.Batch(2000))
	if before.DropRate < 0.6 || before.DropRate > 0.8 {
		t.Fatalf("drop rate %v, want ~0.7", before.DropRate)
	}
	prof := col.Snapshot()
	if got := ExpectedLatency(prog, prof, target); got <= 0 {
		t.Fatalf("expected latency %v", got)
	}
	o := DefaultOptions()
	o.TopKFrac = 1
	plan, err := Optimize(prog, prof, target, o)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Changed() {
		t.Fatal("expected an optimization plan (70% dropped at the last table)")
	}
	if plan.Gain() <= 0 {
		t.Fatalf("gain = %v", plan.Gain())
	}
	if err := emu.Swap(plan.Program); err != nil {
		t.Fatal(err)
	}
	emu.Measure(gen.Batch(1000)) // warm
	after := emu.Measure(gen.Batch(2000))
	if after.MeanLatencyNs >= before.MeanLatencyNs {
		t.Errorf("optimized layout not faster: %v >= %v", after.MeanLatencyNs, before.MeanLatencyNs)
	}
}

func TestPublicAPIRuntimeAndControl(t *testing.T) {
	prog := demoProgram(t)
	target := BlueField2()
	col := NewCollector()
	emu, err := NewEmulator(prog, EmulatorConfig{Params: target, Collector: col, Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog, emu, col, target, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", rt, col)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialControl(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	// Optimize once so the deployed layout may differ from the original.
	gen := NewTrafficGen(3)
	gen.AddFlows(UniformFlows(4, 100)...)
	emu.Measure(gen.Batch(1000))
	if _, err := rt.OptimizeOnce(time.Second); err != nil {
		t.Fatal(err)
	}
	// Insert against the original table name.
	err = cl.InsertEntry("acl", Entry{Match: []MatchValue{{Value: 8080}}, Action: "drop_packet"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Program()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() == 0 {
		t.Error("deployed program empty")
	}
	// The rule must be live: port-8080 traffic drops.
	g2 := NewTrafficGen(5)
	g2.AddFlows(DropTargetedFlows(6, 100, "tcp.dport", 8080, 1.0)...)
	m := emu.Measure(g2.Batch(500))
	if m.DropRate < 0.99 {
		t.Errorf("inserted rule not effective: drop rate %v", m.DropRate)
	}
}

func TestProgramFileRoundTrip(t *testing.T) {
	prog := demoProgram(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.json")
	if err := prog.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != prog.NumNodes() || back.Root != prog.Root {
		t.Error("file round trip mangled the program")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back2, err := ReadProgram(f)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Name != prog.Name {
		t.Error("ReadProgram mismatch")
	}
}

func TestTargetsDiffer(t *testing.T) {
	bf, ag, em := BlueField2(), AgilioCX(), EmulatedNIC()
	if bf.Name == ag.Name || ag.Name == em.Name {
		t.Error("targets must be distinct")
	}
	if bf.LineRateGbps != 100 || ag.LineRateGbps != 40 {
		t.Error("line rates per the paper's setups")
	}
	if em.LPMFixedM != 3 || em.TernaryFixedM != 3 {
		t.Error("emulated NIC should pin LPM/ternary at 3x exact (§5.3.3)")
	}
	if math.Abs(em.CondLatency()-0.1*em.Lmat) > 1e-9 {
		t.Error("emulated NIC branch cost should be 1/10 of an exact probe")
	}
}

func TestParsePacketPublic(t *testing.T) {
	gen := NewTrafficGen(9)
	gen.AddFlows(Flow{Src: 1, Dst: 2, SPort: 3, DPort: 4})
	wire := gen.Next().Serialize()
	p, err := ParsePacket(wire)
	if err != nil {
		t.Fatal(err)
	}
	if p.IP.SrcAddr != 1 || p.TCP.DstPort != 4 {
		t.Error("parse mismatch")
	}
}
