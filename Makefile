GO ?= go

.PHONY: build test vet race fmtcheck lint ci verify conformance traces bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmtcheck fails (listing the offenders) when any file is not gofmt-clean.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs the project's own static analyzers: the architecture linter
# over the module (layering + determinism rules) and the P4 program
# analyzer over the checked-in program corpus (each trace is linted under
# its recorded cost model).
lint:
	$(GO) run ./cmd/archlint .
	$(GO) run ./cmd/p4lint -q testdata/dash.p4 testdata/traces/bluefield2.json testdata/traces/agiliocx.json

# ci is the full continuous-integration chain: formatting, static checks,
# compile, and the complete suite under the race detector.
ci: fmtcheck lint
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# conformance runs the target-backend conformance suite (local emulator,
# loopback remote, record/replay) plus the golden-trace round trips.
conformance:
	$(GO) test -race -run 'TestConformance|TestRuntimeRollbackOnVerifyFailure' ./internal/target/
	$(GO) test -race -run 'TestReplayRoundTrip|TestCoreDoesNotImportNicsim' ./internal/core/

# verify is the pre-merge gate: compile everything, vet, run the full
# suite under the race detector (the runtime loop, control plane, and
# fault-injection paths are concurrent), then the backend conformance
# suite explicitly.
verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...
	$(MAKE) lint
	$(MAKE) conformance

# traces regenerates the golden replay traces consumed by the core replay
# round-trip tests and `pipeleon -trace`.
traces:
	$(GO) run ./cmd/tracegen -out testdata/traces/bluefield2.json -target bluefield2 -seed 7
	$(GO) run ./cmd/tracegen -out testdata/traces/agiliocx.json -target agiliocx -seed 21

# bench runs the hot-path micro-benchmarks (emulator fast path, parallel
# measurement, search) plus the Figure 12 profiling-overhead benches, and
# archives the parsed results in BENCH_emulator.json (see DESIGN.md's
# "Performance architecture" for how to read it).
bench:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkEmulatorProcess|BenchmarkMeasureParallel|BenchmarkSearch$$|BenchmarkFig12' \
		-benchmem . | $(GO) run ./cmd/benchjson -out BENCH_emulator.json
