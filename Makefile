GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: compile everything, vet, and run the full
# suite under the race detector (the runtime loop, control plane, and
# fault-injection paths are concurrent).
verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

# bench runs the hot-path micro-benchmarks (emulator fast path, parallel
# measurement, search) plus the Figure 12 profiling-overhead benches, and
# archives the parsed results in BENCH_emulator.json (see DESIGN.md's
# "Performance architecture" for how to read it).
bench:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkEmulatorProcess|BenchmarkMeasureParallel|BenchmarkSearch$$|BenchmarkFig12' \
		-benchmem . | $(GO) run ./cmd/benchjson -out BENCH_emulator.json
