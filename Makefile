GO ?= go

.PHONY: build test vet race verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: compile everything, vet, and run the full
# suite under the race detector (the runtime loop, control plane, and
# fault-injection paths are concurrent).
verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...
