GO ?= go

.PHONY: build test vet race fmtcheck lint ci verify conformance traces bench benchcheck fuzz fleet-sim

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmtcheck fails (listing the offenders) when any file is not gofmt-clean.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs the project's own static analyzers: the architecture linter
# over the module (layering + determinism + diag-code rules) and the P4
# program analyzer — with the symbolic -deep tier — over the checked-in
# program corpus (each trace is linted under its recorded cost model).
# p4lint exits 1 on warnings, so the corpus must stay warning-free.
lint:
	$(GO) run ./cmd/archlint .
	$(GO) run ./cmd/p4lint -q -deep testdata/dash.p4 testdata/traces/bluefield2.json testdata/traces/agiliocx.json

# fuzz gives every native fuzz target a short budget of engine time on
# top of the checked-in seed corpora (which `go test` already replays as
# regular cases). Go allows one -fuzz pattern per invocation, hence one
# line per target. FUZZTIME=5m for a longer local campaign.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME) ./internal/p4c/
	$(GO) test -run '^$$' -fuzz '^FuzzLexer$$' -fuzztime $(FUZZTIME) ./internal/p4c/
	$(GO) test -run '^$$' -fuzz '^FuzzLoadValidate$$' -fuzztime $(FUZZTIME) ./internal/p4ir/
	$(GO) test -run '^$$' -fuzz '^FuzzPlanCompileProcess$$' -fuzztime $(FUZZTIME) ./internal/nicsim/
	$(GO) test -run '^$$' -fuzz '^FuzzSPSCOps$$' -fuzztime $(FUZZTIME) ./internal/ring/
	$(GO) test -run '^$$' -fuzz '^FuzzAbsintAgree$$' -fuzztime $(FUZZTIME) ./internal/analysis/absint/

# ci is the full continuous-integration chain: formatting, static checks,
# compile, the complete suite under the race detector, and a short fuzz
# pass over every native fuzz target.
ci: fmtcheck lint
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) fuzz

# conformance runs the target-backend conformance suite (local emulator,
# loopback remote, record/replay) plus the golden-trace round trips.
conformance:
	$(GO) test -race -run 'TestConformance|TestRuntimeRollbackOnVerifyFailure' ./internal/target/
	$(GO) test -race -run 'TestReplayRoundTrip|TestCoreDoesNotImportNicsim' ./internal/core/

# fleet-sim drives the scripted fleet acceptance scenario through the
# fleetd binary itself: 8 in-process emulated devices, one crashing and
# one verify-failing, through canary halt, mid-wave rollback, graceful
# degradation, and probation recovery. The same scenario runs as
# TestFleetFaultScenario; this target exercises it through the daemon's
# wiring rather than the test harness.
fleet-sim:
	$(GO) run ./cmd/fleetd -scenario

# verify is the pre-merge gate: compile everything, vet, run the full
# suite under the race detector (the runtime loop, control plane, and
# fault-injection paths are concurrent), then the backend conformance
# suite explicitly, then the scripted fleet scenario through fleetd,
# then the bench-regression gate against the archived baseline.
verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...
	$(MAKE) lint
	$(MAKE) conformance
	$(MAKE) fleet-sim
	$(MAKE) benchcheck

# traces regenerates the golden replay traces consumed by the core replay
# round-trip tests and `pipeleon -trace`.
traces:
	$(GO) run ./cmd/tracegen -out testdata/traces/bluefield2.json -target bluefield2 -seed 7
	$(GO) run ./cmd/tracegen -out testdata/traces/agiliocx.json -target agiliocx -seed 21

# bench runs the hot-path micro-benchmarks (emulator fast path, parallel
# measurement, search) plus the Figure 12 profiling-overhead benches, and
# archives the parsed results in BENCH_emulator.json (see DESIGN.md's
# "Performance architecture" for how to read it).
bench:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkEmulatorProcess|BenchmarkMeasureParallel|BenchmarkSearch$$|BenchmarkSearchCold$$|BenchmarkSearchWarm$$|BenchmarkSweep$$|BenchmarkFig12|BenchmarkPlacementPlan$$|BenchmarkFig20' \
		-benchmem . | $(GO) run ./cmd/benchjson -out BENCH_emulator.json

# benchcheck is the bench-regression gate: rerun the hot-path bench set
# (-count=3; the gate compares best-of-3 per metric) and fail (exit
# nonzero) if a gated benchmark regressed more than MAXREGRESS in ns/op
# — or grew allocs/op — versus the committed BENCH_emulator.json
# baseline. The -gate regexp excludes the multi-worker MeasureParallel
# entries: at GOMAXPROCS=1 those measure scheduler contention, not the
# datapath, and swing well past any sane threshold run to run. Refresh
# the baseline with `make bench` after intentional performance changes.
MAXREGRESS ?= 0.15
benchcheck:
	$(GO) test -run '^$$' -count=3 \
		-bench 'BenchmarkEmulatorProcess|BenchmarkMeasureParallel|BenchmarkSearch$$|BenchmarkSearchCold$$|BenchmarkSearchWarm$$|BenchmarkSweep$$|BenchmarkFig12|BenchmarkPlacementPlan$$|BenchmarkFig20' \
		-benchmem . | $(GO) run ./cmd/benchjson -compare BENCH_emulator.json -max-regress $(MAXREGRESS) \
		-gate 'Fig12|EmulatorProcess|MeasureParallel/workers=1$$|Search$$|SearchCold$$|SearchWarm$$|Sweep$$|PlacementPlan$$'
