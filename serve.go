package pipeleon

import (
	"pipeleon/internal/controlplane"
)

// ControlServer exposes a Runtime's program-management API over TCP with
// a length-prefixed JSON protocol (the repo's P4Runtime stand-in).
type ControlServer = controlplane.Server

// ControlClient talks to a ControlServer.
type ControlClient = controlplane.Client

// Serve starts a control-plane server for the runtime on addr
// (e.g. "127.0.0.1:9559"; ":0" picks a free port). The collector may be
// nil to disable counter reads.
func Serve(addr string, rt *Runtime, col *Collector) (*ControlServer, error) {
	return controlplane.NewServer(addr, rt, col)
}

// DialControl connects to a control-plane server.
func DialControl(addr string) (*ControlClient, error) {
	return controlplane.Dial(addr)
}
